/// Rollback differential harness for speculative frontier decisions
/// (sim/stream.hpp set_speculate) and the warm-started dual search
/// (dualapprox WarmDualBounds): speculation-on is locked bit-identical to
/// speculation-off — every delivery field and the accumulated result —
/// across >1000 seeded tapes x random watermark chunkings of the §5
/// moldable/rigid/divisible mix, including late arrivals landing exactly
/// on a staged batch's open instant; crafted tapes pin the commit,
/// rollback, toggle-off and checkpoint/restore paths individually and
/// assert the speculation counters are not vacuous. The same lock runs
/// through the engine (StreamConfig::speculate) and the serving layer
/// (StreamOptions::speculate) for shards {1, 2, 4} x both policies. The
/// warm-start side extends the dual-test call-count regression: a
/// warm-seeded search replays the cold trajectory bit-identically
/// (estimate, lower bound, partition, schedules) while performing strictly
/// fewer dual tests on consecutive near-identical batches, and falls back
/// to exactly the cold search (same call count) on its first use.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/demt.hpp"
#include "core/policy.hpp"
#include "dualapprox/cmax_estimator.hpp"
#include "dualapprox/dual_test.hpp"
#include "engine/engine.hpp"
#include "serve/async_scheduler.hpp"
#include "sim/checkpoint.hpp"
#include "sim/online.hpp"
#include "sim/stream.hpp"
#include "tasks/allotment_table.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

FlatOfflineScheduler flat_offline() {
  return [](const Instance& batch, OnlineWorkspace& ws,
            FlatPlacements& out) { flat_list_schedule(batch, ws.list, out); };
}

// ------------------------------------------------------- tape generation

/// A release-sorted arrival tape of the §5 mix. Releases live on a coarse
/// half-unit grid so exact ties — and arrivals landing exactly on a staged
/// batch's open instant, the boundary case of the invalidation rule —
/// occur constantly rather than with probability zero.
struct Tape {
  int m = 1;
  std::vector<StreamArrival> arrivals;
};

Tape make_tape(std::uint64_t seed) {
  Rng rng(seed);
  static const int kMachines[] = {1, 2, 3, 5, 8};
  Tape tape;
  tape.m = kMachines[rng.uniform_int(0, 4)];
  const int count = static_cast<int>(rng.uniform_int(4, 10));
  double release = 0.0;
  for (int i = 0; i < count; ++i) {
    if (i > 0 && !rng.bernoulli(0.35)) {
      release += 0.5 * static_cast<double>(rng.uniform_int(1, 4));
    }
    const double roll = rng.uniform();
    if (roll < 0.55) {
      Instance tmp = generate_instance(WorkloadFamily::Mixed, 1, tape.m, rng);
      tape.arrivals.push_back(moldable_arrival(tmp.task(0), release));
    } else if (roll < 0.80) {
      const int procs = static_cast<int>(rng.uniform_int(1, tape.m));
      tape.arrivals.push_back(rigid_arrival(procs, rng.uniform(0.2, 2.0),
                                            rng.uniform(0.5, 3.0), release));
    } else {
      tape.arrivals.push_back(divisible_arrival(
          rng.uniform(0.5, 6.0), rng.uniform(0.5, 3.0), release));
    }
  }
  return tape;
}

/// One feed call: arrivals [begin, end) plus the watermark to advance to.
struct FeedStep {
  std::size_t begin = 0;
  std::size_t end = 0;
  double watermark = 0.0;
};

/// Chunk a tape into a random feed plan. Watermarks are drawn from the
/// legal interval [last release fed, next release]: the low edge leaves
/// open batches undecided (speculation territory — the next arrival can
/// still tie the open instant exactly and force a rollback), the high edge
/// confirms everything fed so far. Empty feeds (watermark-only) ride
/// along.
std::vector<FeedStep> plan_chunks(const Tape& tape, Rng& rng) {
  std::vector<FeedStep> plan;
  const std::size_t total = tape.arrivals.size();
  std::size_t i = 0;
  double watermark = 0.0;
  bool last_was_empty = false;
  while (i < total) {
    std::size_t take =
        static_cast<std::size_t>(rng.uniform_int(last_was_empty ? 1 : 0, 3));
    take = std::min(take, total - i);
    const std::size_t end = i + take;
    double lo = watermark;
    if (end > i) lo = std::max(lo, tape.arrivals[end - 1].release);
    double hi = end < total ? tape.arrivals[end].release : lo + 1.0;
    hi = std::max(hi, lo);
    double wm = lo;
    switch (rng.uniform_int(0, 2)) {
      case 0: wm = lo; break;
      case 1: wm = hi; break;
      default: wm = lo + (hi - lo) * rng.uniform(); break;
    }
    plan.push_back(FeedStep{i, end, wm});
    watermark = wm;
    last_was_empty = take == 0;
    i = end;
  }
  return plan;
}

// --------------------------------------------------- exact comparators

void expect_identical_placements(const FlatPlacements& a,
                                 const FlatPlacements& b) {
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.proc_begin, b.proc_begin);
  EXPECT_EQ(a.proc_count, b.proc_count);
  EXPECT_EQ(a.proc_ids, b.proc_ids);
}

void expect_identical_delivery(const StreamDelivery& a,
                               const StreamDelivery& b) {
  EXPECT_EQ(a.first_job, b.first_job);
  expect_identical_placements(a.placements, b.placements);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.batch_starts, b.batch_starts);
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  for (std::size_t c = 0; c < a.chunks.size(); ++c) {
    EXPECT_EQ(a.chunks[c].job, b.chunks[c].job) << "chunk " << c;
    EXPECT_EQ(a.chunks[c].proc, b.chunks[c].proc) << "chunk " << c;
    EXPECT_EQ(a.chunks[c].start, b.chunks[c].start) << "chunk " << c;
    EXPECT_EQ(a.chunks[c].duration, b.chunks[c].duration) << "chunk " << c;
  }
  EXPECT_EQ(a.divisible_done, b.divisible_done);
  EXPECT_EQ(a.divisible_completion, b.divisible_completion);
  EXPECT_EQ(a.final_delivery, b.final_delivery);
  EXPECT_EQ(a.cmax, b.cmax);
  EXPECT_EQ(a.weighted_completion_sum, b.weighted_completion_sum);
  EXPECT_EQ(a.weighted_flow_sum, b.weighted_flow_sum);
  EXPECT_EQ(a.divisible_weighted_completion_sum,
            b.divisible_weighted_completion_sum);
  EXPECT_EQ(a.num_batches, b.num_batches);
}

void expect_identical_deliveries(const std::vector<StreamDelivery>& a,
                                 const std::vector<StreamDelivery>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t d = 0; d < a.size(); ++d) {
    SCOPED_TRACE(testing::Message() << "delivery " << d);
    expect_identical_delivery(a[d], b[d]);
  }
}

void expect_identical_result(const FlatOnlineResult& a,
                             const FlatOnlineResult& b) {
  expect_identical_placements(a.schedule, b.schedule);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.flow, b.flow);
  EXPECT_EQ(a.cmax, b.cmax);
  EXPECT_EQ(a.weighted_completion_sum, b.weighted_completion_sum);
  EXPECT_EQ(a.weighted_flow_sum, b.weighted_flow_sum);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.batch_starts, b.batch_starts);
}

// ----------------------------------------------------------- tape runner

struct RunOutput {
  std::vector<StreamDelivery> deliveries;
  FlatOnlineResult result;
  std::uint64_t decided = 0;
  std::uint64_t committed = 0;
  std::uint64_t rolled_back = 0;
};

RunOutput run_tape(const Tape& tape, const std::vector<FeedStep>& plan,
                   bool speculate,
                   const SchedulingPolicy* policy = nullptr,
                   PolicyWorkspace* policy_ws = nullptr) {
  OnlineStream stream;
  stream.open(tape.m, {});
  stream.set_speculate(speculate);
  EXPECT_EQ(stream.speculate(), speculate);
  const FlatOfflineScheduler offline = flat_offline();
  RunOutput out;
  StreamDelivery delivery;
  for (const FeedStep& step : plan) {
    if (policy != nullptr) {
      stream.feed(tape.arrivals.data() + step.begin, step.end - step.begin,
                  step.watermark, *policy, *policy_ws, delivery);
    } else {
      stream.feed(tape.arrivals.data() + step.begin, step.end - step.begin,
                  step.watermark, offline, delivery);
    }
    out.deliveries.push_back(delivery);
  }
  if (policy != nullptr) {
    stream.finish(*policy, *policy_ws, delivery);
  } else {
    stream.finish(offline, delivery);
  }
  EXPECT_TRUE(delivery.final_delivery);
  out.deliveries.push_back(delivery);
  out.result = stream.result();
  out.decided = stream.speculated_batches();
  out.committed = stream.committed_speculations();
  out.rolled_back = stream.rolled_back_speculations();
  return out;
}

// ------------------------------------------------- differential fuzzing

TEST(Speculation, FuzzedTapesAndChunkingsAreBitIdentical) {
  std::uint64_t total_decided = 0;
  std::uint64_t total_committed = 0;
  std::uint64_t total_rolled_back = 0;
  int runs = 0;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    const Tape tape = make_tape(seed);
    for (std::uint64_t chunking = 0; chunking < 3; ++chunking) {
      SCOPED_TRACE(testing::Message()
                   << "seed " << seed << " chunking " << chunking);
      Rng plan_rng(seed * 1000 + chunking);
      const std::vector<FeedStep> plan = plan_chunks(tape, plan_rng);
      const RunOutput off = run_tape(tape, plan, false);
      const RunOutput on = run_tape(tape, plan, true);
      expect_identical_deliveries(off.deliveries, on.deliveries);
      expect_identical_result(off.result, on.result);
      EXPECT_EQ(off.decided, 0u);
      EXPECT_EQ(off.committed, 0u);
      EXPECT_EQ(off.rolled_back, 0u);
      total_decided += on.decided;
      total_committed += on.committed;
      total_rolled_back += on.rolled_back;
      ++runs;
    }
  }
  // The differential is meaningless if speculation never fires: across the
  // fuzz corpus stages, commits and rollbacks must all have happened.
  EXPECT_GE(runs, 1000);
  EXPECT_GT(total_decided, 0u);
  EXPECT_GT(total_committed, 0u);
  EXPECT_GT(total_rolled_back, 0u);
}

TEST(Speculation, PolicyFeedFormIsBitIdentical) {
  const DemtPolicy demt_policy;
  const FlatListPolicy flat_policy;
  const SchedulingPolicy* policies[] = {&flat_policy, &demt_policy};
  for (const SchedulingPolicy* policy : policies) {
    const auto off_ws = policy->make_workspace();
    const auto on_ws = policy->make_workspace();
    for (std::uint64_t seed = 500; seed < 540; ++seed) {
      SCOPED_TRACE(testing::Message()
                   << policy->name() << " seed " << seed);
      const Tape tape = make_tape(seed);
      Rng plan_rng(seed);
      const std::vector<FeedStep> plan = plan_chunks(tape, plan_rng);
      const RunOutput off = run_tape(tape, plan, false, policy, off_ws.get());
      const RunOutput on = run_tape(tape, plan, true, policy, on_ws.get());
      expect_identical_deliveries(off.deliveries, on.deliveries);
      expect_identical_result(off.result, on.result);
    }
  }
}

// ------------------------------------------------- crafted boundary tapes

TEST(Speculation, WatermarkConfirmationCommitsStagedDecision) {
  OnlineStream stream;
  stream.open(4, {});
  stream.set_speculate(true);
  const FlatOfflineScheduler offline = flat_offline();
  StreamDelivery out;
  const StreamArrival a = rigid_arrival(2, 1.0, 1.0, 0.0);
  // Watermark == open instant: the batch is not final, but speculation
  // decides it anyway and stages the decision off to the side.
  stream.feed(&a, 1, 0.0, offline, out);
  EXPECT_EQ(out.num_jobs(), 0);
  EXPECT_EQ(stream.speculated_batches(), 1u);
  EXPECT_EQ(stream.committed_speculations(), 0u);
  EXPECT_EQ(stream.batch_jobs_decided(), 0);
  // The confirming watermark commits the staged record without re-deciding.
  stream.feed(nullptr, 0, 2.0, offline, out);
  EXPECT_EQ(out.num_jobs(), 1);
  EXPECT_EQ(stream.committed_speculations(), 1u);
  EXPECT_EQ(stream.rolled_back_speculations(), 0u);
  EXPECT_EQ(out.placements.start[0], 0.0);
  EXPECT_EQ(out.placements.duration[0], 1.0);
  stream.finish(offline, out);
  EXPECT_EQ(stream.result().cmax, 1.0);
}

TEST(Speculation, LateArrivalExactlyOnOpenRollsBack) {
  const FlatOfflineScheduler offline = flat_offline();
  const StreamArrival a = rigid_arrival(2, 1.0, 2.0, 0.0);
  const StreamArrival b = rigid_arrival(1, 2.0, 1.0, 0.0);  // ties the open

  OnlineStream spec;
  spec.open(4, {});
  spec.set_speculate(true);
  StreamDelivery out;
  spec.feed(&a, 1, 0.0, offline, out);
  EXPECT_EQ(spec.speculated_batches(), 1u);
  // b releases exactly on the staged batch's open instant — it belongs to
  // that batch, so the stage must roll back and the batch re-decides with
  // both members.
  spec.feed(&b, 1, 0.0, offline, out);
  EXPECT_EQ(spec.rolled_back_speculations(), 1u);
  // The same feed immediately re-speculates the merged {a, b} batch...
  EXPECT_EQ(spec.speculated_batches(), 2u);
  spec.finish(offline, out);
  // ...which finish() then confirms.
  EXPECT_EQ(spec.committed_speculations(), 1u);

  OnlineStream plain;
  plain.open(4, {});
  StreamDelivery plain_out;
  plain.feed(&a, 1, 0.0, offline, plain_out);
  plain.feed(&b, 1, 0.0, offline, plain_out);
  plain.finish(offline, plain_out);
  expect_identical_result(plain.result(), spec.result());
  EXPECT_EQ(spec.result().num_batches, 1);
}

TEST(Speculation, TogglingOffRollsBackStagedRecords) {
  const FlatOfflineScheduler offline = flat_offline();
  const StreamArrival a = rigid_arrival(1, 1.0, 1.0, 0.0);
  OnlineStream stream;
  stream.open(2, {});
  stream.set_speculate(true);
  StreamDelivery out;
  stream.feed(&a, 1, 0.0, offline, out);
  EXPECT_EQ(stream.speculated_batches(), 1u);
  stream.set_speculate(false);
  EXPECT_EQ(stream.rolled_back_speculations(), 1u);
  EXPECT_FALSE(stream.speculate());
  stream.finish(offline, out);
  EXPECT_EQ(stream.committed_speculations(), 0u);
  EXPECT_EQ(out.num_jobs(), 1);
  EXPECT_EQ(stream.result().cmax, 1.0);
}

TEST(Speculation, CheckpointCarriesConfirmedStateOnly) {
  const Tape tape = make_tape(77);
  Rng plan_rng(77);
  const std::vector<FeedStep> plan = plan_chunks(tape, plan_rng);
  const FlatOfflineScheduler offline = flat_offline();

  // Run the first half speculating, checkpoint mid-stream (staged records
  // may be live), and resume the second half on a restored session.
  OnlineStream original;
  original.open(tape.m, {});
  original.set_speculate(true);
  StreamDelivery out;
  const std::size_t half = plan.size() / 2;
  for (std::size_t f = 0; f < half; ++f) {
    original.feed(tape.arrivals.data() + plan[f].begin,
                  plan[f].end - plan[f].begin, plan[f].watermark, offline,
                  out);
  }
  StreamCheckpoint ckpt;
  original.checkpoint(ckpt);

  OnlineStream restored;
  restored.restore(ckpt);
  EXPECT_FALSE(restored.speculate());  // restore resets to off
  restored.set_speculate(true);

  std::vector<StreamDelivery> original_tail;
  std::vector<StreamDelivery> restored_tail;
  for (std::size_t f = half; f < plan.size(); ++f) {
    original.feed(tape.arrivals.data() + plan[f].begin,
                  plan[f].end - plan[f].begin, plan[f].watermark, offline,
                  out);
    original_tail.push_back(out);
    restored.feed(tape.arrivals.data() + plan[f].begin,
                  plan[f].end - plan[f].begin, plan[f].watermark, offline,
                  out);
    restored_tail.push_back(out);
  }
  original.finish(offline, out);
  original_tail.push_back(out);
  restored.finish(offline, out);
  restored_tail.push_back(out);
  expect_identical_deliveries(original_tail, restored_tail);
}

TEST(Speculation, SparseWatermarkChainsMultipleStagedBatches) {
  // Distinct release instants fed together under a held-back watermark:
  // speculation must chain several staged batches (each building on the
  // previous record's frontier and divisible residue), then commit them
  // all when the watermark finally advances.
  const FlatOfflineScheduler offline = flat_offline();
  std::vector<StreamArrival> arrivals = {
      rigid_arrival(2, 1.0, 1.0, 0.0),
      divisible_arrival(3.0, 1.0, 0.0),
      rigid_arrival(1, 0.5, 2.0, 4.0),
      rigid_arrival(2, 0.75, 1.0, 8.0),
  };
  OnlineStream spec;
  spec.open(2, {});
  spec.set_speculate(true);
  StreamDelivery out;
  spec.feed(arrivals.data(), arrivals.size(), 8.0, offline, out);
  // Batches at 0 and 4 are final (watermark 8 passed them); the batch at 8
  // is staged speculatively.
  EXPECT_EQ(spec.batch_jobs_decided(), 2);
  EXPECT_GE(spec.speculated_batches(), 1u);
  spec.feed(nullptr, 0, 9.0, offline, out);
  EXPECT_EQ(spec.batch_jobs_decided(), 3);
  EXPECT_GE(spec.committed_speculations(), 1u);
  spec.finish(offline, out);

  OnlineStream plain;
  plain.open(2, {});
  StreamDelivery plain_out;
  plain.feed(arrivals.data(), arrivals.size(), 8.0, offline, plain_out);
  plain.feed(nullptr, 0, 9.0, offline, plain_out);
  plain.finish(offline, plain_out);
  expect_identical_result(plain.result(), spec.result());
}

// ------------------------------------------------------ depth cap

/// Live staged records = decided - committed - rolled back.
std::uint64_t live_staged(const OnlineStream& stream) {
  return stream.speculated_batches() - stream.committed_speculations() -
         stream.rolled_back_speculations();
}

TEST(Speculation, DepthBudgetPreservesDeliveriesAndCounters) {
  // The budget never changes what a stream delivers: a stage, a commit,
  // and a re-stage after the frontier advances look the same at every
  // depth (the commit refreshes the budget).
  const FlatOfflineScheduler offline = flat_offline();
  std::vector<StreamArrival> arrivals;
  for (int i = 0; i < 3; ++i) {
    arrivals.push_back(rigid_arrival(2, 1.0, 1.0, 0.0));
  }
  const StreamArrival late = rigid_arrival(1, 2.0, 1.0, 10.0);
  std::vector<FlatOnlineResult> results;
  for (const int depth : {0, 1, 2, 100}) {
    SCOPED_TRACE(testing::Message() << "depth " << depth);
    OnlineStream stream;
    stream.open(2, {});
    stream.set_speculate(true);
    stream.set_speculate_depth(depth);
    EXPECT_EQ(stream.speculate_depth(), depth);
    StreamDelivery out;
    // Releases tie the watermark, so the batch is not final: it is staged
    // speculatively (one record absorbs every tying arrival).
    stream.feed(arrivals.data(), arrivals.size(), 0.0, offline, out);
    EXPECT_EQ(out.num_jobs(), 0);
    EXPECT_EQ(live_staged(stream), 1u);
    // The confirming watermark commits the stage and refreshes the budget,
    // so the next held-back arrival stages again even at depth 1.
    stream.feed(&late, 1, 10.0, offline, out);
    EXPECT_EQ(out.num_jobs(), 3);
    EXPECT_EQ(stream.committed_speculations(), 1u);
    EXPECT_EQ(live_staged(stream), 1u);
    stream.finish(offline, out);
    EXPECT_EQ(stream.committed_speculations(), 2u);
    EXPECT_EQ(stream.rolled_back_speculations(), 0u);
    results.push_back(stream.result());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_identical_result(results[0], results[i]);
  }
  OnlineStream stream;
  stream.open(2, {});
  EXPECT_THROW(stream.set_speculate_depth(-1), std::invalid_argument);
}

TEST(Speculation, ChangingDepthMidStreamTakesEffectImmediately) {
  // Tightening the budget below what is already spent at the current
  // frontier suppresses re-staging; widening it back re-enables staging at
  // the next feed. The schedule never changes.
  const FlatOfflineScheduler offline = flat_offline();
  auto tie = [](double weight) { return rigid_arrival(1, 1.0, weight, 0.0); };
  const StreamArrival a = tie(1.0), b = tie(2.0), c = tie(3.0), d = tie(4.0),
                      e = tie(5.0);
  OnlineStream stream;
  stream.open(2, {});
  stream.set_speculate(true);
  StreamDelivery out;
  stream.feed(&a, 1, 0.0, offline, out);     // stages {a}
  EXPECT_EQ(stream.speculated_batches(), 1u);
  stream.feed(&b, 1, 0.0, offline, out);     // rolls back, re-stages {a,b}
  EXPECT_EQ(stream.speculated_batches(), 2u);
  EXPECT_EQ(stream.rolled_back_speculations(), 1u);
  EXPECT_EQ(live_staged(stream), 1u);
  // Two stages already spent at this frontier: a budget of one suppresses
  // any further staging until a batch becomes final.
  stream.set_speculate_depth(1);
  stream.feed(&c, 1, 0.0, offline, out);     // rolls back, does NOT re-stage
  EXPECT_EQ(stream.speculated_batches(), 2u);
  EXPECT_EQ(stream.rolled_back_speculations(), 2u);
  EXPECT_EQ(live_staged(stream), 0u);
  stream.feed(&d, 1, 0.0, offline, out);     // still suppressed
  EXPECT_EQ(stream.speculated_batches(), 2u);
  stream.set_speculate_depth(0);             // back to unlimited
  stream.feed(&e, 1, 0.0, offline, out);     // stages {a..e}
  EXPECT_EQ(stream.speculated_batches(), 3u);
  EXPECT_EQ(live_staged(stream), 1u);
  stream.feed(nullptr, 0, 10.0, offline, out);
  EXPECT_EQ(out.num_jobs(), 5);
  EXPECT_EQ(stream.committed_speculations(), 1u);
  stream.finish(offline, out);

  OnlineStream plain;
  plain.open(2, {});
  StreamDelivery plain_out;
  for (const StreamArrival* arr : {&a, &b, &c, &d, &e}) {
    plain.feed(arr, 1, 0.0, offline, plain_out);
  }
  plain.feed(nullptr, 0, 10.0, offline, plain_out);
  plain.finish(offline, plain_out);
  expect_identical_result(plain.result(), stream.result());
}

TEST(Speculation, DepthBoundsWastedWorkOnRollbackHeavyTape) {
  // Rollback-heavy tape: every group of arrivals ties the open watermark,
  // so each new arrival invalidates the staged batch and an unbounded
  // stream immediately re-stages the merged batch — two wasted decisions
  // per group. Depth 1 stages each group once, wasting at most one
  // decision per real batch. Deliveries are bit-identical throughout.
  const FlatOfflineScheduler offline = flat_offline();
  constexpr int kGroups = 5;
  struct Step {
    StreamArrival arrival;
    double watermark;
  };
  std::vector<Step> steps;
  for (int group = 0; group < kGroups; ++group) {
    const double base = 10.0 * group;
    for (int i = 0; i < 3; ++i) {
      steps.push_back(
          Step{rigid_arrival(2, 1.0, 1.0 + static_cast<double>(i), base),
               base});
    }
  }

  std::vector<StreamDelivery> per_depth[2];
  std::uint64_t rolled_back[2] = {0, 0};
  std::uint64_t decided[2] = {0, 0};
  std::uint64_t committed[2] = {0, 0};
  for (const int depth : {0, 1}) {
    OnlineStream stream;
    stream.open(2, {});
    stream.set_speculate(true);
    stream.set_speculate_depth(depth);
    StreamDelivery out;
    for (const Step& step : steps) {
      stream.feed(&step.arrival, 1, step.watermark, offline, out);
      per_depth[depth].push_back(out);
      EXPECT_LE(live_staged(stream), 1u);
    }
    stream.finish(offline, out);
    per_depth[depth].push_back(out);
    rolled_back[depth] = stream.rolled_back_speculations();
    decided[depth] = stream.speculated_batches();
    committed[depth] = stream.committed_speculations();
  }
  expect_identical_deliveries(per_depth[0], per_depth[1]);
  // Unlimited: stage, roll back + re-stage twice per group (three
  // decisions, two wasted), commit the survivor.
  EXPECT_EQ(decided[0], 3u * kGroups);
  EXPECT_EQ(rolled_back[0], 2u * kGroups);
  EXPECT_EQ(committed[0], static_cast<std::uint64_t>(kGroups));
  // Depth 1: one stage per group; once the first late arrival rolls it
  // back the budget is spent and the batch is decided fresh instead —
  // wasted work bounded at depth decisions per real batch.
  EXPECT_EQ(decided[1], static_cast<std::uint64_t>(kGroups));
  EXPECT_EQ(rolled_back[1], static_cast<std::uint64_t>(kGroups));
  EXPECT_LT(decided[1], decided[0]);
}

// --------------------------------------------------- engine + serve lock

TEST(Speculation, EngineStreamSpeculationIsBitIdenticalAndCounted) {
  SchedulerEngine engine(EngineOptions{1, false});
  for (std::uint64_t seed = 600; seed < 620; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const Tape tape = make_tape(seed);
    Rng plan_rng(seed);
    const std::vector<FeedStep> plan = plan_chunks(tape, plan_rng);
    std::vector<StreamDelivery> off_deliveries;
    std::vector<StreamDelivery> on_deliveries;
    for (const bool speculate : {false, true}) {
      StreamConfig config;
      config.m = tape.m;
      config.speculate = speculate;
      const EngineStreamId id = engine.open_stream(config);
      StreamDelivery out;
      auto& sink = speculate ? on_deliveries : off_deliveries;
      for (const FeedStep& step : plan) {
        engine.feed_stream(id, tape.arrivals.data() + step.begin,
                           step.end - step.begin, step.watermark, out);
        sink.push_back(out);
      }
      engine.close_stream(id, out);
      sink.push_back(out);
    }
    expect_identical_deliveries(off_deliveries, on_deliveries);
  }
  const EngineStats& stats = engine.stats();
  EXPECT_GT(stats.spec_decided, 0u);
  EXPECT_GT(stats.spec_committed, 0u);
  EXPECT_EQ(stats.spec_decided, stats.spec_committed + stats.spec_rolled_back);
}

TEST(Speculation, DepthOptionRidesEngineAndServeConfigs) {
  // StreamConfig::speculate_depth and StreamOptions::speculate_depth reach
  // the session: capped speculation stays bit-identical to the unlimited
  // run while rolling back no more than the cap allows.
  const Tape tape = make_tape(333);
  Rng plan_rng(333);
  const std::vector<FeedStep> plan = plan_chunks(tape, plan_rng);

  std::vector<StreamDelivery> engine_runs[2];
  for (const int depth : {0, 1}) {
    SchedulerEngine engine(EngineOptions{1, false});
    StreamConfig config;
    config.m = tape.m;
    config.speculate = true;
    config.speculate_depth = depth;
    const EngineStreamId id = engine.open_stream(config);
    StreamDelivery out;
    for (const FeedStep& step : plan) {
      engine.feed_stream(id, tape.arrivals.data() + step.begin,
                         step.end - step.begin, step.watermark, out);
      engine_runs[depth].push_back(out);
    }
    engine.close_stream(id, out);
    engine_runs[depth].push_back(out);
    if (depth == 1) {
      const EngineStats& stats = engine.stats();
      EXPECT_EQ(stats.spec_decided,
                stats.spec_committed + stats.spec_rolled_back);
    }
  }
  expect_identical_deliveries(engine_runs[0], engine_runs[1]);

  std::vector<StreamDelivery> serve_runs[2];
  for (const int depth : {0, 1}) {
    AsyncOptions options;
    options.shards = 2;
    options.flush_after_ms = 0.1;
    AsyncScheduler async(options);
    StreamOptions stream_options;
    stream_options.m = tape.m;
    stream_options.speculate = true;
    stream_options.speculate_depth = depth;
    const StreamTicket stream = async.open_stream(stream_options);
    ASSERT_TRUE(stream.accepted());
    std::vector<Ticket> tickets;
    for (const FeedStep& step : plan) {
      tickets.push_back(async.submit_stream(stream,
                                            tape.arrivals.data() + step.begin,
                                            step.end - step.begin,
                                            step.watermark));
      ASSERT_TRUE(tickets.back().accepted());
    }
    tickets.push_back(async.close_stream(stream));
    ASSERT_TRUE(tickets.back().accepted());
    async.drain();
    StreamDelivery delivery;
    for (const Ticket& ticket : tickets) {
      ASSERT_EQ(async.wait(ticket), TicketStatus::Done);
      ASSERT_TRUE(async.take_stream(ticket, delivery));
      serve_runs[depth].push_back(delivery);
    }
  }
  expect_identical_deliveries(serve_runs[0], serve_runs[1]);
}

TEST(Speculation, ServeLayerIsBitIdenticalAcrossShardsAndPolicies) {
  const Tape tape = make_tape(901);
  Rng plan_rng(901);
  const std::vector<FeedStep> plan = plan_chunks(tape, plan_rng);
  for (int shards : {1, 2, 4}) {
    for (const bool use_demt : {false, true}) {
      SCOPED_TRACE(testing::Message()
                   << "shards " << shards << (use_demt ? " demt" : " flat"));
      std::vector<StreamDelivery> per_mode[2];
      std::uint64_t on_decided = 0;
      for (const bool speculate : {false, true}) {
        AsyncOptions options;
        options.shards = shards;
        options.flush_after_ms = 0.1;
        AsyncScheduler async(options);
        StreamOptions stream_options;
        stream_options.m = tape.m;
        stream_options.offline_algorithm =
            use_demt ? EngineAlgorithm::Demt : EngineAlgorithm::FlatList;
        stream_options.speculate = speculate;
        const StreamTicket stream = async.open_stream(stream_options);
        ASSERT_TRUE(stream.accepted());
        std::vector<Ticket> tickets;
        for (const FeedStep& step : plan) {
          tickets.push_back(async.submit_stream(
              stream, tape.arrivals.data() + step.begin,
              step.end - step.begin, step.watermark));
          ASSERT_TRUE(tickets.back().accepted());
        }
        tickets.push_back(async.close_stream(stream));
        ASSERT_TRUE(tickets.back().accepted());
        async.drain();
        StreamDelivery delivery;
        for (const Ticket& ticket : tickets) {
          ASSERT_EQ(async.wait(ticket), TicketStatus::Done);
          ASSERT_TRUE(async.take_stream(ticket, delivery));
          per_mode[speculate ? 1 : 0].push_back(delivery);
        }
        const AsyncStats stats = async.stats();
        if (speculate) {
          on_decided = stats.spec_decided;
          EXPECT_EQ(stats.spec_decided,
                    stats.spec_committed + stats.spec_rolled_back);
        } else {
          EXPECT_EQ(stats.spec_decided, 0u);
        }
      }
      expect_identical_deliveries(per_mode[0], per_mode[1]);
      EXPECT_GT(on_decided, 0u);
    }
  }
}

// ------------------------------------------------- warm-started dual tests

/// Moldable task with power-law speedup and occasional non-monotone bumps
/// (same shape the DEMT kernel fuzz uses) so the dual search bisects for
/// real instead of accepting the combinatorial bound outright.
MoldableTask make_warm_task(Rng& rng, int m) {
  const double seq = rng.uniform(0.5, 10.0);
  const double alpha = rng.uniform(0.3, 1.0);
  std::vector<double> times;
  for (int k = 1; k <= m; ++k) {
    double t = seq / std::pow(static_cast<double>(k), alpha);
    if (k > 1 && rng.bernoulli(0.15)) t *= rng.uniform(1.05, 1.5);
    times.push_back(t);
  }
  return MoldableTask(std::move(times), rng.uniform(1.0, 10.0));
}

Instance make_warm_instance(int n, int m, Rng& rng) {
  Instance instance(m);
  for (int i = 0; i < n; ++i) instance.add_task(make_warm_task(rng, m));
  return instance;
}

/// The consecutive-batch shape speculation produces: the same instance
/// with every processing time scaled by a hair.
Instance perturb_instance(const Instance& base, double scale) {
  Instance out(base.procs());
  for (int t = 0; t < base.num_tasks(); ++t) {
    const MoldableTask& task = base.task(t);
    std::vector<double> times;
    for (int k = 1; k <= task.max_procs(); ++k) {
      times.push_back(task.time(k) * scale);
    }
    out.add_task(
        MoldableTask(std::move(times), task.weight(), task.min_procs()));
  }
  return out;
}

void expect_identical_dual(const DualTestResult& a, const DualTestResult& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.total_work, b.total_work);
  if (!a.feasible) return;
  ASSERT_EQ(a.assignment.size(), b.assignment.size());
  for (std::size_t i = 0; i < a.assignment.size(); ++i) {
    EXPECT_EQ(a.assignment[i].shelf, b.assignment[i].shelf) << "task " << i;
    EXPECT_EQ(a.assignment[i].allotment, b.assignment[i].allotment)
        << "task " << i;
  }
}

void expect_identical_estimate(const CmaxEstimate& a, const CmaxEstimate& b) {
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
  expect_identical_dual(a.partition, b.partition);
}

TEST(WarmStart, FirstCallFallsBackToExactlyTheColdSearch) {
  Rng rng(0x5EED);
  for (int trial = 0; trial < 30; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 32));
    const int n = static_cast<int>(rng.uniform_int(2, 24));
    const Instance instance = make_warm_instance(n, m, rng);
    const InstanceAllotments tables(instance);
    DualTestWorkspace warm_ws;
    warm_ws.warm.enabled = true;  // enabled but no recorded bounds yet
    DualTestWorkspace cold_ws;
    CmaxEstimate warm_out;
    CmaxEstimate cold_out;
    estimate_cmax_into(instance, 1e-4, tables, warm_ws, warm_out);
    estimate_cmax_into(instance, 1e-4, tables, cold_ws, cold_out);
    expect_identical_estimate(warm_out, cold_out);
    // With no seed facts the replay infers nothing: same call count too.
    EXPECT_EQ(warm_out.dual_tests, cold_out.dual_tests);
    EXPECT_TRUE(warm_ws.warm.valid);  // bounds recorded for the next batch
  }
}

TEST(WarmStart, RepeatedBatchIsBitIdenticalWithStrictlyFewerTests) {
  Rng rng(0xFACADE);
  int bisecting_trials = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Instance instance = make_warm_instance(16, 24, rng);
    const InstanceAllotments tables(instance);
    DualTestWorkspace warm_ws;
    warm_ws.warm.enabled = true;
    for (int step = 0; step < 3; ++step) {
      DualTestWorkspace cold_ws;
      CmaxEstimate warm_out;
      CmaxEstimate cold_out;
      estimate_cmax_into(instance, 1e-4, tables, warm_ws, warm_out);
      estimate_cmax_into(instance, 1e-4, tables, cold_ws, cold_out);
      expect_identical_estimate(warm_out, cold_out);
      if (step == 0) {
        EXPECT_EQ(warm_out.dual_tests, cold_out.dual_tests);
      } else {
        EXPECT_LE(warm_out.dual_tests, cold_out.dual_tests);
        if (cold_out.dual_tests > 2) {
          // A real bisection: the recorded bracket proves every probe by
          // monotonicity, so the warm replay needs only its seed tests.
          EXPECT_LT(warm_out.dual_tests, cold_out.dual_tests);
          ++bisecting_trials;
        }
      }
    }
  }
  EXPECT_GT(bisecting_trials, 0);  // the strict gate must not be vacuous
}

TEST(WarmStart, NearIdenticalBatchSequenceStaysBitIdenticalAndCheaper) {
  Rng rng(0xBEEF);
  int warm_total = 0;
  int cold_total = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const Instance base = make_warm_instance(14, 20, rng);
    DualTestWorkspace warm_ws;
    warm_ws.warm.enabled = true;
    const double scales[] = {1.0, 1.0 + 1e-7, 1.0 - 1e-7, 1.0 + 3e-7};
    for (int step = 0; step < 4; ++step) {
      const Instance instance = perturb_instance(base, scales[step]);
      const InstanceAllotments tables(instance);
      DualTestWorkspace cold_ws;
      CmaxEstimate warm_out;
      CmaxEstimate cold_out;
      estimate_cmax_into(instance, 1e-4, tables, warm_ws, warm_out);
      estimate_cmax_into(instance, 1e-4, tables, cold_ws, cold_out);
      expect_identical_estimate(warm_out, cold_out);
      if (step > 0) {
        warm_total += warm_out.dual_tests;
        cold_total += cold_out.dual_tests;
      }
    }
  }
  // Aggregate regression gate: warm-started searches over consecutive
  // near-identical batches must be strictly cheaper than cold ones.
  EXPECT_LT(warm_total, cold_total);
}

TEST(WarmStart, DemtWarmOptionKeepsSchedulesIdentical) {
  Rng rng(0xD137);
  DemtOptions cold_options;
  DemtOptions warm_options;
  warm_options.warm_dual_start = true;
  int warm_total = 0;
  int cold_total = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Instance base = make_warm_instance(12, 16, rng);
    DemtWorkspace warm_ws;
    DemtWorkspace cold_ws;
    FlatPlacements warm_out;
    FlatPlacements cold_out;
    DemtDiagnostics warm_diag;
    DemtDiagnostics cold_diag;
    const double scales[] = {1.0, 1.0 + 1e-7, 1.0 - 2e-7};
    for (int step = 0; step < 3; ++step) {
      const Instance instance = perturb_instance(base, scales[step]);
      demt_schedule_into(instance, warm_options, warm_ws, warm_out, warm_diag);
      demt_schedule_into(instance, cold_options, cold_ws, cold_out, cold_diag);
      expect_identical_placements(warm_out, cold_out);
      EXPECT_EQ(warm_diag.cmax_estimate, cold_diag.cmax_estimate);
      EXPECT_EQ(warm_diag.cmax_lower_bound, cold_diag.cmax_lower_bound);
      EXPECT_EQ(warm_diag.grid_k, cold_diag.grid_k);
      EXPECT_EQ(warm_diag.num_batches, cold_diag.num_batches);
      EXPECT_EQ(warm_diag.merged_stacks, cold_diag.merged_stacks);
      EXPECT_EQ(warm_diag.shuffle_improvements,
                cold_diag.shuffle_improvements);
      if (step == 0) {
        // First call on a fresh workspace is a cold search either way.
        EXPECT_EQ(warm_diag.dual_tests, cold_diag.dual_tests);
      } else {
        EXPECT_LE(warm_diag.dual_tests, cold_diag.dual_tests);
        warm_total += warm_diag.dual_tests;
        cold_total += cold_diag.dual_tests;
      }
    }
  }
  EXPECT_LT(warm_total, cold_total);
}

TEST(WarmStart, CacheKeyIgnoresWarmDualStart) {
  DemtOptions cold_options;
  DemtOptions warm_options;
  warm_options.warm_dual_start = true;
  const DemtPolicy cold_policy(cold_options);
  const DemtPolicy warm_policy(warm_options);
  // Warm-starting never changes decisions, so cached entries must be
  // shareable across the toggle (mirrors the shuffle_workers exclusion).
  EXPECT_EQ(cold_policy.cache_key(), warm_policy.cache_key());
}

}  // namespace
}  // namespace moldsched
