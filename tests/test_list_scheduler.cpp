#include "sched/list_scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sched/validator.hpp"

namespace moldsched {
namespace {

TEST(ListScheduler, SingleJob) {
  const Schedule schedule = list_schedule(4, 1, {{0, 2, 3.0, 0.0}});
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 0.0);
  EXPECT_EQ(schedule.placement(0).nprocs(), 2);
  EXPECT_DOUBLE_EQ(schedule.cmax(), 3.0);
}

TEST(ListScheduler, PacksGreedilyAtTimeZero) {
  // Three 2-proc jobs on 4 procs: two start immediately, third waits.
  const Schedule schedule = list_schedule(
      4, 3, {{0, 2, 5.0, 0.0}, {1, 2, 3.0, 0.0}, {2, 2, 4.0, 0.0}});
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 0.0);
  EXPECT_DOUBLE_EQ(schedule.placement(1).start, 0.0);
  // Job 2 starts when job 1 (the shorter) finishes.
  EXPECT_DOUBLE_EQ(schedule.placement(2).start, 3.0);
  EXPECT_DOUBLE_EQ(schedule.cmax(), 7.0);
}

TEST(ListScheduler, LaterListEntryCanBackfill) {
  // Graham list behaviour: job 1 needs 3 procs (can't fit at t=0 next to
  // job 0 on 4 procs), job 2 needs 1 proc and jumps ahead.
  const Schedule schedule = list_schedule(
      4, 3, {{0, 2, 4.0, 0.0}, {1, 3, 2.0, 0.0}, {2, 1, 1.0, 0.0}});
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 0.0);
  EXPECT_DOUBLE_EQ(schedule.placement(2).start, 0.0);  // backfilled
  EXPECT_DOUBLE_EQ(schedule.placement(1).start, 4.0);
}

TEST(ListScheduler, RespectsReleaseDates) {
  const Schedule schedule =
      list_schedule(2, 2, {{0, 1, 2.0, 5.0}, {1, 1, 1.0, 0.0}});
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 5.0);
  EXPECT_DOUBLE_EQ(schedule.placement(1).start, 0.0);
}

TEST(ListScheduler, SequentialWhenMachineIsFull) {
  const Schedule schedule =
      list_schedule(2, 3, {{0, 2, 1.0, 0.0}, {1, 2, 1.0, 0.0}, {2, 2, 1.0, 0.0}});
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 0.0);
  EXPECT_DOUBLE_EQ(schedule.placement(1).start, 1.0);
  EXPECT_DOUBLE_EQ(schedule.placement(2).start, 2.0);
}

TEST(ListScheduler, ProducesValidSchedules) {
  Instance instance(8);
  std::vector<ListJob> jobs;
  for (int i = 0; i < 20; ++i) {
    const int procs = 1 + (i * 7) % 5;
    const double duration = 1.0 + (i % 4);
    std::vector<double> times(8, duration);
    // Build an instance whose p(k) equals the job duration for every k so
    // the duration check passes regardless of the allotment.
    instance.add_task(MoldableTask(std::move(times), 1.0));
    jobs.push_back(ListJob{i, procs, duration, 0.0});
  }
  const Schedule schedule = list_schedule(8, 20, jobs);
  ValidationOptions options;
  options.check_durations = false;
  const auto report = validate_schedule(schedule, instance, options);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(ListScheduler, GrahamBoundHolds) {
  // Classic Graham guarantee for sequential jobs: cmax <= (2 - 1/m) * opt.
  // Build random-ish 1-proc jobs and check against the area/longest bound.
  std::vector<ListJob> jobs;
  double total = 0.0, longest = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double d = 0.5 + (i * 37 % 11);
    jobs.push_back(ListJob{i, 1, d, 0.0});
    total += d;
    longest = std::max(longest, d);
  }
  const int m = 7;
  const Schedule schedule = list_schedule(m, 50, jobs);
  const double lb = std::max(longest, total / m);
  EXPECT_LE(schedule.cmax(), (2.0 - 1.0 / m) * lb + 1e-9);
}

TEST(ListScheduler, Validation) {
  EXPECT_THROW(list_schedule(2, 1, {{0, 3, 1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(list_schedule(2, 1, {{0, 0, 1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(list_schedule(2, 1, {{0, 1, 0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(list_schedule(2, 1, {{0, 1, 1.0, -1.0}}), std::invalid_argument);
  EXPECT_THROW(list_schedule(2, 1, {{2, 1, 1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(list_schedule(2, 2, {{0, 1, 1.0, 0.0}, {0, 1, 1.0, 0.0}}),
               std::invalid_argument);
}

TEST(ListScheduler, PartialJobListLeavesOthersUnassigned) {
  const Schedule schedule = list_schedule(2, 5, {{3, 1, 2.0, 0.0}});
  EXPECT_TRUE(schedule.assigned(3));
  EXPECT_FALSE(schedule.assigned(0));
  EXPECT_FALSE(schedule.assigned(4));
}

TEST(ListScheduler, ReservationBlocksProcessor) {
  // Processor 0 reserved [0, 10): a 1-proc job must use processor 1.
  ListScheduleOptions options;
  options.reservations = {{0, 0.0, 10.0}};
  const Schedule schedule = list_schedule(2, 1, {{0, 1, 2.0, 0.0}}, options);
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 0.0);
  EXPECT_EQ(schedule.placement(0).procs[0], 1);
}

TEST(ListScheduler, ReservationDelaysWideJob) {
  // Both procs needed but proc 1 reserved [0, 4): job waits until 4.
  ListScheduleOptions options;
  options.reservations = {{1, 0.0, 4.0}};
  const Schedule schedule = list_schedule(2, 1, {{0, 2, 1.0, 0.0}}, options);
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 4.0);
}

TEST(ListScheduler, UpcomingReservationStopsLongJob) {
  // Proc 0 reserved [3, 5). A job of length 4 cannot use proc 0 at t=0
  // (it would collide at t=3) and must take proc 1.
  ListScheduleOptions options;
  options.reservations = {{0, 3.0, 5.0}};
  const Schedule schedule = list_schedule(2, 1, {{0, 1, 4.0, 0.0}}, options);
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 0.0);
  EXPECT_EQ(schedule.placement(0).procs[0], 1);
}

// ------------------------------------------------ event-heap edge cases

TEST(ListScheduler, SimultaneousFinishesDrainAsOneEvent) {
  // Four 1-proc jobs all finish at t=2 (exactly equal doubles). The event
  // heap must pop every tied finish before rescanning, so the 4-proc job
  // sees the whole machine at once and starts at 2, not at some later
  // partially-freed instant.
  const Schedule schedule = list_schedule(
      4, 5, {{0, 1, 2.0, 0.0}, {1, 1, 2.0, 0.0}, {2, 1, 2.0, 0.0},
             {3, 1, 2.0, 0.0}, {4, 4, 1.0, 0.0}});
  EXPECT_DOUBLE_EQ(schedule.placement(4).start, 2.0);
  EXPECT_DOUBLE_EQ(schedule.cmax(), 3.0);
}

TEST(ListScheduler, EqualDurationTiesKeepListOrder) {
  // Three identical 2-proc jobs on 2 procs: ties in every heap key. The
  // schedule must follow the priority list deterministically.
  const Schedule schedule = list_schedule(
      2, 3, {{2, 2, 1.5, 0.0}, {0, 2, 1.5, 0.0}, {1, 2, 1.5, 0.0}});
  EXPECT_DOUBLE_EQ(schedule.placement(2).start, 0.0);
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 1.5);
  EXPECT_DOUBLE_EQ(schedule.placement(1).start, 3.0);
}

TEST(ListScheduler, SingleProcessorChainsInListOrder) {
  // m=1 degenerates to a sequential chain: starts are exact running sums
  // (no epsilon drift from the event loop), releases still respected.
  const Schedule schedule = list_schedule(
      1, 4, {{0, 1, 1.25, 0.0}, {1, 1, 0.5, 0.0}, {2, 1, 2.0, 0.0},
             {3, 1, 1.0, 5.0}});
  EXPECT_EQ(schedule.placement(0).start, 0.0);
  EXPECT_EQ(schedule.placement(1).start, 1.25);
  EXPECT_EQ(schedule.placement(2).start, 1.75);
  EXPECT_EQ(schedule.placement(3).start, 5.0);  // waits for its release
  EXPECT_DOUBLE_EQ(schedule.cmax(), 6.0);
}

TEST(ListScheduler, JobStartsExactlyAtReservationEnd) {
  // Reservation [0, 4) on the only processor: the freeing event at exactly
  // t=4 must make the processor usable at 4, not strictly after it.
  ListScheduleOptions options;
  options.reservations = {{0, 0.0, 4.0}};
  const Schedule schedule = list_schedule(1, 1, {{0, 1, 2.0, 0.0}}, options);
  EXPECT_EQ(schedule.placement(0).start, 4.0);
}

TEST(ListScheduler, JobFinishingExactlyAtReservationStartFits) {
  // Proc 0 reserved [3, 5). A job of length 3 at t=0 finishes exactly when
  // the reservation begins — a half-open boundary, so it may use proc 0.
  ListScheduleOptions options;
  options.reservations = {{0, 3.0, 5.0}};
  const Schedule schedule = list_schedule(1, 1, {{0, 1, 3.0, 0.0}}, options);
  EXPECT_EQ(schedule.placement(0).start, 0.0);
  EXPECT_EQ(schedule.placement(0).procs[0], 0);
}

TEST(ListScheduler, ReservationFinishTiedWithJobFinish) {
  // A job finish and a reservation finish land on the same heap key
  // (t=2): both frees must drain before the 2-proc job is scanned, so it
  // starts at exactly 2 on the full machine.
  ListScheduleOptions options;
  options.reservations = {{1, 0.0, 2.0}};
  const Schedule schedule =
      list_schedule(2, 2, {{0, 1, 2.0, 0.0}, {1, 2, 1.0, 0.0}}, options);
  EXPECT_EQ(schedule.placement(0).start, 0.0);
  EXPECT_EQ(schedule.placement(1).start, 2.0);
  EXPECT_DOUBLE_EQ(schedule.cmax(), 3.0);
}

TEST(ListScheduler, BackToBackReservationsOnOneProcessor) {
  // Two abutting reservations [0,2) and [2,4) on proc 0 of a 1-proc
  // machine: the per-proc reservation chain must advance across the shared
  // boundary without opening a zero-width hole at t=2.
  ListScheduleOptions options;
  options.reservations = {{0, 0.0, 2.0}, {0, 2.0, 4.0}};
  const Schedule schedule = list_schedule(1, 1, {{0, 1, 1.0, 0.0}}, options);
  EXPECT_EQ(schedule.placement(0).start, 4.0);
}

}  // namespace
}  // namespace moldsched
