/// Determinism and workspace contracts of the multi-instance engine
/// (mirroring test_parallel_determinism for the shuffle engine): the same
/// request batch must give bit-identical results for 1, 2, 4 and all
/// workers, match direct demt_schedule calls, and workspace reuse across
/// batches must never leak state between requests.

#include <gtest/gtest.h>

#include "core/demt.hpp"
#include "engine/engine.hpp"
#include "sched/validator.hpp"
#include "sim/online.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

std::vector<Instance> make_instances(int count, int n, int m,
                                     std::uint64_t seed) {
  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  Rng rng(seed);
  std::vector<Instance> instances;
  for (int i = 0; i < count; ++i) {
    instances.push_back(generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng));
  }
  return instances;
}

void expect_identical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (int t = 0; t < a.num_tasks(); ++t) {
    const Placement& pa = a.placement(t);
    const Placement& pb = b.placement(t);
    EXPECT_EQ(pa.start, pb.start) << "task " << t;
    EXPECT_EQ(pa.duration, pb.duration) << "task " << t;
    EXPECT_EQ(pa.procs, pb.procs) << "task " << t;
  }
}

TEST(Engine, DeterministicAcrossWorkerCounts) {
  const auto instances = make_instances(6, 40, 16, 20040627);
  DemtOptions demt;
  demt.shuffles = 8;

  SchedulerEngine sequential(EngineOptions{1, true});
  const auto base = sequential.schedule_all(instances,
                                            EngineAlgorithm::Demt, demt);
  ASSERT_EQ(base.size(), instances.size());

  for (int workers : {2, 4, 0}) {
    SchedulerEngine engine(EngineOptions{workers, true});
    const auto results =
        engine.schedule_all(instances, EngineAlgorithm::Demt, demt);
    ASSERT_EQ(results.size(), base.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].cmax, base[i].cmax) << "workers=" << workers;
      EXPECT_EQ(results[i].weighted_completion_sum,
                base[i].weighted_completion_sum)
          << "workers=" << workers;
      expect_identical(results[i].schedule, base[i].schedule);
    }
  }
}

TEST(Engine, MatchesDirectDemtCalls) {
  const auto instances = make_instances(4, 30, 12, 42);
  SchedulerEngine engine(EngineOptions{0, true});
  const auto results = engine.schedule_all(instances);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto direct = demt_schedule(instances[i]);
    expect_identical(results[i].schedule, direct.schedule);
    EXPECT_EQ(results[i].diag.num_batches, direct.diag.num_batches);
    EXPECT_EQ(results[i].diag.shuffle_improvements,
              direct.diag.shuffle_improvements);
    require_valid(results[i].schedule, instances[i]);
  }
}

TEST(Engine, FlatListIsFeasibleAndDeterministic) {
  const auto instances = make_instances(5, 50, 16, 7);
  SchedulerEngine engine(EngineOptions{1, true});
  const auto first =
      engine.schedule_all(instances, EngineAlgorithm::FlatList);
  SchedulerEngine parallel(EngineOptions{0, true});
  const auto second =
      parallel.schedule_all(instances, EngineAlgorithm::FlatList);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    require_valid(first[i].schedule, instances[i]);
    expect_identical(first[i].schedule, second[i].schedule);
    EXPECT_EQ(first[i].cmax, first[i].schedule.cmax());
    EXPECT_EQ(first[i].weighted_completion_sum,
              first[i].schedule.weighted_completion_sum(instances[i]));
  }
}

TEST(Engine, MetricsOnlyModeMatchesScheduleMode) {
  const auto instances = make_instances(4, 35, 12, 9);
  SchedulerEngine with_schedules(EngineOptions{1, true});
  SchedulerEngine metrics_only(EngineOptions{1, false});
  for (auto algorithm : {EngineAlgorithm::Demt, EngineAlgorithm::FlatList}) {
    const auto full = with_schedules.schedule_all(instances, algorithm);
    const auto lean = metrics_only.schedule_all(instances, algorithm);
    for (std::size_t i = 0; i < instances.size(); ++i) {
      EXPECT_TRUE(full[i].has_schedule);
      EXPECT_FALSE(lean[i].has_schedule);
      EXPECT_EQ(full[i].cmax, lean[i].cmax);
      EXPECT_EQ(full[i].weighted_completion_sum,
                lean[i].weighted_completion_sum);
    }
  }
}

TEST(Engine, WorkspaceReuseAcrossBatchesIsStateless) {
  const auto big = make_instances(4, 45, 16, 11);
  const auto small = make_instances(4, 10, 8, 13);
  SchedulerEngine engine(EngineOptions{1, true});
  const auto base = engine.schedule_all(big);
  (void)engine.schedule_all(small);  // shrink then regrow the workspaces
  const auto again = engine.schedule_all(big);
  for (std::size_t i = 0; i < big.size(); ++i) {
    expect_identical(again[i].schedule, base[i].schedule);
  }
}

TEST(Engine, OnlineSimulationMatchesDirectPath) {
  Rng rng(17);
  const int m = 8;
  std::vector<std::vector<OnlineJob>> streams(3);
  for (auto& stream : streams) {
    double release = 0.0;
    for (int j = 0; j < 12; ++j) {
      Instance tmp = generate_instance(WorkloadFamily::Cirne, 1, m, rng);
      stream.push_back(OnlineJob{tmp.task(0), release});
      release += rng.uniform(0.0, 1.0);
    }
  }
  std::vector<OnlineRequest> requests(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    requests[i].m = m;
    requests[i].jobs = &streams[i];
    requests[i].offline_algorithm = EngineAlgorithm::Demt;
  }

  SchedulerEngine sequential(EngineOptions{1, true});
  std::vector<FlatOnlineResult> base;
  sequential.simulate_batch(requests, base);

  for (int workers : {2, 0}) {
    SchedulerEngine engine(EngineOptions{workers, true});
    std::vector<FlatOnlineResult> results;
    engine.simulate_batch(requests, results);
    ASSERT_EQ(results.size(), base.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].cmax, base[i].cmax);
      EXPECT_EQ(results[i].schedule.start, base[i].schedule.start);
      EXPECT_EQ(results[i].schedule.duration, base[i].schedule.duration);
    }
  }

  for (std::size_t i = 0; i < streams.size(); ++i) {
    const auto direct = online_batch_schedule(
        m, streams[i], [](const Instance& instance) {
          return demt_schedule(instance).schedule;
        });
    EXPECT_EQ(base[i].cmax, direct.cmax);
    EXPECT_EQ(base[i].weighted_completion_sum,
              direct.weighted_completion_sum);
    EXPECT_EQ(base[i].num_batches, direct.num_batches);
  }
}

TEST(Engine, StatsCountRequestsAndBatches) {
  const auto instances = make_instances(3, 15, 8, 21);
  SchedulerEngine engine(EngineOptions{1, true});
  EXPECT_EQ(engine.stats().requests, 0u);
  (void)engine.schedule_all(instances);
  (void)engine.schedule_all(instances);
  EXPECT_EQ(engine.stats().requests, 2 * instances.size());
  EXPECT_EQ(engine.stats().batches, 2u);
  EXPECT_EQ(engine.stats().strands_last_batch, 1);
}

TEST(Engine, EmptyBatchIsServedWithoutDispatch) {
  SchedulerEngine engine(EngineOptions{0, true});
  std::vector<EngineRequest> no_requests;
  std::vector<EngineResult> results(3);  // stale storage must be cleared
  engine.schedule_batch(no_requests, results);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(engine.stats().requests, 0u);
  EXPECT_EQ(engine.stats().batches, 0u);
  std::vector<OnlineRequest> no_online;
  std::vector<FlatOnlineResult> online_results;
  engine.simulate_batch(no_online, online_results);
  EXPECT_TRUE(online_results.empty());
}

TEST(Engine, SingleRequestBatchMatchesDirectCall) {
  const auto instances = make_instances(1, 25, 12, 23);
  for (int workers : {1, 0}) {
    SchedulerEngine engine(EngineOptions{workers, true});
    const auto results = engine.schedule_all(instances);
    ASSERT_EQ(results.size(), 1u);
    const auto direct = demt_schedule(instances[0]);
    EXPECT_EQ(results[0].cmax, direct.schedule.cmax());
    expect_identical(results[0].schedule, direct.schedule);
    EXPECT_EQ(engine.stats().strands_last_batch, 1);  // never > batch size
  }
}

TEST(Engine, RawPointerBatchHookMatchesVectorOverload) {
  // schedule_batch_into is the async layer's batch-assembly hook; it must
  // be bit-identical to the vector path it backs.
  const auto instances = make_instances(5, 30, 12, 29);
  std::vector<EngineRequest> requests(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    requests[i].instance = &instances[i];
    requests[i].algorithm =
        i % 2 == 0 ? EngineAlgorithm::Demt : EngineAlgorithm::FlatList;
  }
  SchedulerEngine vector_engine(EngineOptions{1, true});
  std::vector<EngineResult> expected;
  vector_engine.schedule_batch(requests, expected);

  SchedulerEngine raw_engine(EngineOptions{1, true});
  std::vector<EngineResult> actual(requests.size());
  raw_engine.schedule_batch_into(requests.data(), requests.size(),
                                 actual.data());
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].cmax, expected[i].cmax);
    EXPECT_EQ(actual[i].weighted_completion_sum,
              expected[i].weighted_completion_sum);
    expect_identical(actual[i].schedule, expected[i].schedule);
  }
  EXPECT_EQ(raw_engine.stats().requests, requests.size());
}

TEST(Engine, RejectsBadRequests) {
  SchedulerEngine engine;
  EXPECT_THROW((void)engine.schedule_batch({EngineRequest{}}),
               std::invalid_argument);
  EXPECT_THROW(SchedulerEngine(EngineOptions{-1, true}),
               std::invalid_argument);
  std::vector<FlatOnlineResult> results;
  EXPECT_THROW(engine.simulate_batch({OnlineRequest{}}, results),
               std::invalid_argument);
}

}  // namespace
}  // namespace moldsched
