/// Contracts of the fault-tolerance layer (serve/fault.hpp +
/// serve/async_scheduler.hpp): the FaultInjector is a deterministic pure
/// function of its plan, bounded retry recovers injected engine throws
/// (and reports policy + attempts on exhaustion), timed waits bound a
/// stalled strand without consuming the ticket, cancel()/max_queue_ms
/// drop pending one-shots as Cancelled, the watchdog fails a stalled
/// shard and survivors absorb its queue, and — the acceptance gate —
/// killing a shard mid-tape migrates its pinned streams via checkpoint
/// with bit-identical deliveries and no lost tickets.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "serve/admission.hpp"
#include "serve/async_scheduler.hpp"
#include "serve/fault.hpp"
#include "sim/online.hpp"
#include "sim/stream.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

std::vector<Instance> make_instances(int count, int n, int m,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> instances;
  for (int i = 0; i < count; ++i) {
    instances.push_back(generate_instance(WorkloadFamily::Mixed, n, m, rng));
  }
  return instances;
}

std::vector<OnlineJob> make_jobs(int count, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<OnlineJob> jobs;
  double release = 0.0;
  for (int i = 0; i < count; ++i) {
    Instance tmp = generate_instance(WorkloadFamily::Mixed, 1, m, rng);
    jobs.push_back(OnlineJob{tmp.task(0), release});
    release += rng.uniform(0.05, 1.0);
  }
  return jobs;
}

OfflineScheduler object_offline() {
  return [](const Instance& batch) {
    ListPassWorkspace list;
    FlatPlacements out;
    flat_list_schedule(batch, list, out);
    return out.to_schedule(batch.procs());
  };
}

// ---------------------------------------------------------------------------
// FaultInjector: pure, seeded, scripted, validated.

TEST(FaultInjector, DeterministicSeededAndScripted) {
  FaultPlan plan;
  plan.seed = 42;
  plan.throw_rate = 0.3;
  plan.stall_rate = 0.2;
  plan.death_rate = 0.1;
  plan.stall_ms = 7.0;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  EXPECT_TRUE(a.enabled());
  int throws = 0, stalls = 0, deaths = 0;
  for (int shard = 0; shard < 4; ++shard) {
    for (std::uint64_t batch = 0; batch < 200; ++batch) {
      const FaultDecision da = a.decide(shard, batch);
      const FaultDecision db = b.decide(shard, batch);
      EXPECT_EQ(da.kind, db.kind);  // same plan => same decision, always
      EXPECT_EQ(da.stall_ms, db.stall_ms);
      if (da.kind == FaultKind::EngineThrow) ++throws;
      if (da.kind == FaultKind::SlowBatch) {
        ++stalls;
        EXPECT_EQ(da.stall_ms, 7.0);
      }
      if (da.kind == FaultKind::ShardDeath) ++deaths;
    }
  }
  // With 800 draws at rates .3/.2/.1, every kind fires many times.
  EXPECT_GT(throws, 100);
  EXPECT_GT(stalls, 50);
  EXPECT_GT(deaths, 20);

  // A different seed reshuffles which points fire.
  auto reseeded = plan;
  reseeded.seed = 43;
  const FaultInjector c(reseeded);
  int differing = 0;
  for (std::uint64_t batch = 0; batch < 200; ++batch) {
    if (a.decide(0, batch).kind != c.decide(0, batch).kind) ++differing;
  }
  EXPECT_GT(differing, 0);

  // Scripted points beat the rates and hit exactly their (shard, batch).
  FaultPlan scripted;
  scripted.points.push_back(
      FaultPoint{FaultKind::SlowBatch, /*shard=*/2, /*batch=*/7,
                 /*stall_ms=*/33.0});
  scripted.points.push_back(
      FaultPoint{FaultKind::ShardDeath, /*shard=*/-1, /*batch=*/9, 0.0});
  const FaultInjector s(scripted);
  EXPECT_EQ(s.decide(2, 7).kind, FaultKind::SlowBatch);
  EXPECT_EQ(s.decide(2, 7).stall_ms, 33.0);
  EXPECT_EQ(s.decide(1, 7).kind, FaultKind::None);
  EXPECT_EQ(s.decide(2, 6).kind, FaultKind::None);
  EXPECT_EQ(s.decide(0, 9).kind, FaultKind::ShardDeath);  // -1 = any shard
  EXPECT_EQ(s.decide(3, 9).kind, FaultKind::ShardDeath);

  const FaultInjector off;  // default plan: chaos disabled
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.decide(0, 0).kind, FaultKind::None);
}

TEST(FaultInjector, ValidatesPlanAndRetryOptions) {
  FaultPlan plan;
  plan.throw_rate = -0.1;
  EXPECT_THROW(FaultInjector{plan}, std::invalid_argument);
  plan.throw_rate = 1.5;
  EXPECT_THROW(FaultInjector{plan}, std::invalid_argument);
  plan.throw_rate = 0.7;
  plan.death_rate = 0.5;  // sum > 1: the rates partition one draw
  EXPECT_THROW(FaultInjector{plan}, std::invalid_argument);
  plan = {};
  plan.points.push_back(FaultPoint{});  // scripted point without a kind
  EXPECT_THROW(FaultInjector{plan}, std::invalid_argument);

  // The scheduler validates its chaos/retry options at construction.
  AsyncOptions bad_rates;
  bad_rates.faults.death_rate = 2.0;
  EXPECT_THROW(AsyncScheduler{bad_rates}, std::invalid_argument);
  AsyncOptions bad_attempts;
  bad_attempts.retry.max_attempts = 0;
  EXPECT_THROW(AsyncScheduler{bad_attempts}, std::invalid_argument);
  AsyncOptions bad_backoff;
  bad_backoff.retry.max_attempts = 2;
  bad_backoff.retry.base_backoff_ms = -1.0;
  EXPECT_THROW(AsyncScheduler{bad_backoff}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Retry with backoff.

TEST(FaultTolerance, RetryRecoversInjectedThrowBitIdentically) {
  const auto instances = make_instances(1, 24, 8, 5);
  EngineRequest request;
  request.instance = &instances[0];
  request.algorithm = EngineAlgorithm::FlatList;

  SchedulerEngine sync(EngineOptions{1, false});
  std::vector<EngineResult> reference;
  sync.schedule_batch({request}, reference);

  AsyncOptions options;
  options.shards = 1;
  options.flush_after_ms = 0.0;
  options.retry = RetryPolicy{3, 0.05};
  options.faults.points.push_back(
      FaultPoint{FaultKind::EngineThrow, -1, /*batch=*/0, 0.0});
  AsyncScheduler async(options);

  const Ticket ticket = async.submit(request);
  ASSERT_TRUE(ticket.accepted());
  EXPECT_EQ(async.wait(ticket), TicketStatus::Done);
  EXPECT_EQ(async.attempts(ticket), 2u);  // one throw, one clean attempt
  EngineResult result;
  ASSERT_TRUE(async.take(ticket, result));
  EXPECT_EQ(result.cmax, reference[0].cmax);
  EXPECT_EQ(result.weighted_completion_sum,
            reference[0].weighted_completion_sum);
  const AsyncStats stats = async.stats();
  EXPECT_EQ(stats.retried, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_GE(stats.faults_injected, 1u);
}

TEST(FaultTolerance, RetryExhaustionReportsPolicyAndAttempts) {
  const auto instances = make_instances(1, 16, 8, 6);
  EngineRequest request;
  request.instance = &instances[0];
  request.algorithm = EngineAlgorithm::FlatList;

  AsyncOptions options;
  options.shards = 1;
  options.flush_after_ms = 0.0;
  options.retry = RetryPolicy{2, 0.05};
  options.faults.throw_rate = 1.0;  // every batch throws: retry cannot win
  AsyncScheduler async(options);

  const Ticket ticket = async.submit(request);
  ASSERT_TRUE(ticket.accepted());
  EXPECT_EQ(async.wait(ticket), TicketStatus::Failed);
  EXPECT_EQ(async.attempts(ticket), 2u);
  const std::string error = async.error(ticket);
  EXPECT_NE(error.find("injected fault"), std::string::npos) << error;
  EXPECT_NE(error.find("policy: flatlist"), std::string::npos) << error;
  EXPECT_NE(error.find("attempts: 2"), std::string::npos) << error;
  EngineResult result;
  EXPECT_TRUE(async.take(ticket, result));
  const AsyncStats stats = async.stats();
  EXPECT_EQ(stats.retried, 1u);
  EXPECT_EQ(stats.failed, 1u);
}

// ---------------------------------------------------------------------------
// Timed wait, cancel, lane deadline drop.

TEST(FaultTolerance, TimedWaitBoundsAStalledStrand) {
  const auto instances = make_instances(1, 16, 8, 7);
  EngineRequest request;
  request.instance = &instances[0];
  request.algorithm = EngineAlgorithm::FlatList;

  AsyncOptions options;
  options.shards = 1;
  options.flush_after_ms = 0.0;
  options.faults.points.push_back(
      FaultPoint{FaultKind::SlowBatch, -1, /*batch=*/0, /*stall_ms=*/200.0});
  AsyncScheduler async(options);

  const Ticket ticket = async.submit(request);
  ASSERT_TRUE(ticket.accepted());
  // The strand sleeps 200ms before serving; a 2ms wait must give up —
  // without consuming the ticket, which later completes normally.
  EXPECT_EQ(async.wait(ticket, 2.0), TicketStatus::TimedOut);
  EXPECT_EQ(async.wait(ticket), TicketStatus::Done);
  EngineResult result;
  EXPECT_TRUE(async.take(ticket, result));
  EXPECT_EQ(async.poll(ticket), TicketStatus::Invalid);
  EXPECT_GE(async.stats().faults_injected, 1u);
}

TEST(FaultTolerance, CancelDropsPendingOneShotsButNeverStreams) {
  const auto instances = make_instances(2, 16, 8, 8);
  EngineRequest request;
  request.instance = &instances[0];
  request.algorithm = EngineAlgorithm::FlatList;

  AsyncOptions options;
  options.shards = 1;
  options.max_batch = 64;
  options.flush_after_ms = 1e6;  // nothing dispatches until wait() flushes
  AsyncScheduler async(options);

  const Ticket keep = async.submit(request);
  const Ticket drop = async.submit(request);
  ASSERT_TRUE(keep.accepted());
  ASSERT_TRUE(drop.accepted());
  EXPECT_TRUE(async.cancel(drop));
  EXPECT_EQ(async.wait(drop), TicketStatus::Cancelled);
  EXPECT_NE(async.error(drop).find("cancelled by caller"), std::string::npos);
  EXPECT_EQ(async.wait(keep), TicketStatus::Done);  // neighbour unaffected
  EngineResult result;
  EXPECT_TRUE(async.take(drop, result));  // Cancelled still frees its slot
  EXPECT_FALSE(result.has_schedule);
  EXPECT_TRUE(async.take(keep, result));
  EXPECT_FALSE(async.cancel(keep));  // taken ticket: nothing to cancel
  EXPECT_EQ(async.stats().cancelled, 1u);

  // Stream feeds are never cancellable: a skipped feed would corrupt the
  // tape. The refused cancel leaves the feed to complete normally.
  StreamOptions stream_options;
  stream_options.m = 4;
  const StreamTicket stream = async.open_stream(stream_options);
  ASSERT_TRUE(stream.accepted());
  const auto jobs = make_jobs(2, 4, 9);
  std::vector<StreamArrival> arrivals;
  for (const auto& job : jobs) {
    arrivals.push_back(moldable_arrival(job.task, job.release));
  }
  const Ticket feed = async.submit_stream(stream, arrivals.data(),
                                          arrivals.size(),
                                          jobs.back().release);
  ASSERT_TRUE(feed.accepted());
  EXPECT_FALSE(async.cancel(feed));
  EXPECT_EQ(async.wait(feed), TicketStatus::Done);
  StreamDelivery delivery;
  EXPECT_TRUE(async.take_stream(feed, delivery));
  const Ticket close = async.close_stream(stream);
  EXPECT_EQ(async.wait(close), TicketStatus::Done);
  EXPECT_TRUE(async.take_stream(close, delivery));
}

TEST(FaultTolerance, LaneMaxQueueMsDropsStaleRequests) {
  const auto instances = make_instances(1, 16, 8, 10);
  EngineRequest request;
  request.instance = &instances[0];
  request.algorithm = EngineAlgorithm::FlatList;

  const WeightedLanesAdmission policy(
      {LaneSpec{"patient", 1, 0, 0.0}, LaneSpec{"deadline", 1, 0, 1.0}});
  AsyncOptions options;
  options.shards = 1;
  options.max_batch = 64;
  options.flush_after_ms = 1e6;
  options.admission = &policy;
  AsyncScheduler async(options);

  const Ticket stale = async.submit(request, 1);
  ASSERT_TRUE(stale.accepted());
  EXPECT_EQ(stale.lane, 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(async.wait(stale), TicketStatus::Cancelled);
  EXPECT_NE(async.error(stale).find("max_queue_ms"), std::string::npos);
  EngineResult result;
  EXPECT_TRUE(async.take(stale, result));
  EXPECT_EQ(async.stats().dropped, 1u);

  // The patient lane has no deadline: the same wait serves it.
  const Ticket patient = async.submit(request, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(async.wait(patient), TicketStatus::Done);
  EXPECT_TRUE(async.take(patient, result));
}

// ---------------------------------------------------------------------------
// Watchdog failover.

TEST(FaultTolerance, WatchdogFailsStalledShardAndSurvivorsAbsorbQueue) {
  const auto instances = make_instances(8, 20, 8, 11);
  std::vector<EngineRequest> requests(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    requests[i].instance = &instances[i];
    requests[i].algorithm = EngineAlgorithm::FlatList;
  }

  SchedulerEngine sync(EngineOptions{1, false});
  std::vector<EngineResult> reference;
  sync.schedule_batch(requests, reference);

  AsyncOptions options;
  options.shards = 2;
  options.max_batch = 1;  // the stall pins exactly one request
  options.flush_after_ms = 0.0;
  options.watchdog_ms = 20.0;
  options.faults.points.push_back(
      FaultPoint{FaultKind::SlowBatch, /*shard=*/0, /*batch=*/0,
                 /*stall_ms=*/400.0});
  AsyncScheduler async(options);

  std::vector<Ticket> tickets;
  for (const auto& request : requests) {
    tickets.push_back(async.submit(request));
    ASSERT_TRUE(tickets.back().accepted());
  }
  // Shard 0 sleeps 400ms inside its first batch; the 20ms watchdog
  // declares it failed and reroutes its queued work to shard 1, so no
  // request waits behind the stall — and none is lost or duplicated.
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(async.wait(tickets[i]), TicketStatus::Done) << i;
    EngineResult result;
    ASSERT_TRUE(async.take(tickets[i], result));
    EXPECT_EQ(result.cmax, reference[i].cmax) << i;
    EXPECT_EQ(result.weighted_completion_sum,
              reference[i].weighted_completion_sum)
        << i;
  }
  const AsyncStats stats = async.stats();
  EXPECT_EQ(stats.completed, requests.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.shards_failed, 1u);
  EXPECT_GE(stats.failed_over, 1u);
  EXPECT_EQ(async.in_flight(), 0u);
}

// ---------------------------------------------------------------------------
// The acceptance gate: kill a shard mid-tape.

TEST(FaultTolerance, KillAShardMidTapeMigratesStreamsBitIdentically) {
  const int m = 8;
  const int kStreams = 4;
  const std::size_t kChunk = 3;

  std::vector<std::vector<OnlineJob>> tapes;
  std::vector<OnlineResult> references;
  for (int s = 0; s < kStreams; ++s) {
    tapes.push_back(make_jobs(12, m, 100 + static_cast<std::uint64_t>(s)));
    references.push_back(
        online_batch_schedule_reference(m, tapes.back(), object_offline()));
  }
  const auto instances = make_instances(8, 20, m, 12);
  std::vector<EngineRequest> requests(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    requests[i].instance = &instances[i];
    requests[i].algorithm = EngineAlgorithm::FlatList;
  }
  SchedulerEngine sync(EngineOptions{1, false});
  std::vector<EngineResult> reference;
  sync.schedule_batch(requests, reference);

  AsyncOptions options;
  options.shards = 4;
  options.max_batch = 4;
  options.flush_after_ms = 0.0;
  options.retry = RetryPolicy{3, 0.05};
  // Shard 1 dies at its second non-empty batch — mid-tape for whichever
  // stream is pinned there.
  options.faults.points.push_back(
      FaultPoint{FaultKind::ShardDeath, /*shard=*/1, /*batch=*/1, 0.0});
  AsyncScheduler async(options);

  // Opened back-to-back, the four streams pin to four distinct shards
  // (round-robin routing), so exactly one sits on the doomed shard.
  std::vector<StreamTicket> streams;
  for (int s = 0; s < kStreams; ++s) {
    streams.push_back(async.open_stream(StreamOptions{m}));
    ASSERT_TRUE(streams.back().accepted());
  }

  // Feed all tapes chunk by chunk (waiting per feed so deliveries and the
  // scripted batch index stay deterministic), with one-shot traffic
  // interleaved across every shard — including the dead one, whose strand
  // forwards late-routed work to survivors.
  std::vector<std::vector<double>> completions(kStreams);
  std::vector<int> next_job(kStreams, 0);
  StreamDelivery delivery;
  std::size_t next_request = 0;
  std::vector<std::pair<Ticket, std::size_t>> one_shots;
  const std::size_t chunks_per_stream =
      (tapes[0].size() + kChunk - 1) / kChunk;
  for (std::size_t c = 0; c < chunks_per_stream; ++c) {
    for (int s = 0; s < kStreams; ++s) {
      const auto& jobs = tapes[static_cast<std::size_t>(s)];
      const std::size_t first = c * kChunk;
      const std::size_t last = std::min(jobs.size(), first + kChunk);
      std::vector<StreamArrival> arrivals;
      for (std::size_t j = first; j < last; ++j) {
        arrivals.push_back(moldable_arrival(jobs[j].task, jobs[j].release));
      }
      const double watermark =
          last < jobs.size() ? jobs[last].release : jobs.back().release;
      const Ticket feed = async.submit_stream(
          streams[static_cast<std::size_t>(s)], arrivals.data(),
          arrivals.size(), watermark);
      ASSERT_TRUE(feed.accepted());
      ASSERT_EQ(async.wait(feed), TicketStatus::Done)
          << "stream " << s << " chunk " << c << ": " << async.error(feed);
      ASSERT_TRUE(async.take_stream(feed, delivery));
      EXPECT_EQ(delivery.first_job, next_job[static_cast<std::size_t>(s)]);
      next_job[static_cast<std::size_t>(s)] += delivery.num_jobs();
      completions[static_cast<std::size_t>(s)].insert(
          completions[static_cast<std::size_t>(s)].end(),
          delivery.completion.begin(), delivery.completion.end());
      if (next_request < requests.size()) {
        one_shots.emplace_back(async.submit(requests[next_request]),
                               next_request);
        ASSERT_TRUE(one_shots.back().first.accepted());
        ++next_request;
      }
    }
  }
  for (int s = 0; s < kStreams; ++s) {
    const Ticket close = async.close_stream(streams[s]);
    ASSERT_TRUE(close.accepted());
    ASSERT_EQ(async.wait(close), TicketStatus::Done)
        << "stream " << s << ": " << async.error(close);
    ASSERT_TRUE(async.take_stream(close, delivery));
    EXPECT_TRUE(delivery.final_delivery);
    next_job[s] += delivery.num_jobs();
    completions[s].insert(completions[s].end(), delivery.completion.begin(),
                          delivery.completion.end());
    // Migrated or not, the stream's tape replays bit-identically against
    // the off-line simulator on the full arrival list.
    const OnlineResult& ref = references[static_cast<std::size_t>(s)];
    EXPECT_EQ(next_job[s], static_cast<int>(tapes[s].size())) << s;
    EXPECT_EQ(completions[s], ref.completion) << s;
    EXPECT_EQ(delivery.cmax, ref.cmax) << s;
    EXPECT_EQ(delivery.weighted_completion_sum, ref.weighted_completion_sum)
        << s;
  }

  // No one-shot ticket was lost either side of the failover, and every
  // result matches the synchronous engine.
  for (const auto& [ticket, index] : one_shots) {
    EXPECT_EQ(async.wait(ticket), TicketStatus::Done) << index;
    EngineResult result;
    ASSERT_TRUE(async.take(ticket, result));
    EXPECT_EQ(result.cmax, reference[index].cmax) << index;
    EXPECT_EQ(result.weighted_completion_sum,
              reference[index].weighted_completion_sum)
        << index;
  }

  const AsyncStats stats = async.stats();
  EXPECT_EQ(stats.shards_failed, 1u);
  EXPECT_EQ(stats.streams_migrated, 1u);
  EXPECT_GE(stats.faults_injected, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(async.in_flight(), 0u);
  EXPECT_EQ(async.open_streams(), 0u);
}

}  // namespace
}  // namespace moldsched
