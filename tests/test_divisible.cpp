#include "sim/divisible.hpp"

#include <gtest/gtest.h>

#include "core/demt.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

/// No chunk may overlap a placed task or another chunk on its processor.
void expect_no_conflicts(const Schedule& schedule,
                         const DivisibleFillResult& result) {
  struct Interval {
    double start, finish;
  };
  std::vector<std::vector<Interval>> per_proc(
      static_cast<std::size_t>(schedule.procs()));
  for (int i = 0; i < schedule.num_tasks(); ++i) {
    if (!schedule.assigned(i)) continue;
    const Placement& p = schedule.placement(i);
    for (int proc : p.procs) {
      per_proc[static_cast<std::size_t>(proc)].push_back(
          Interval{p.start, p.finish()});
    }
  }
  for (const auto& chunk : result.chunks) {
    per_proc[static_cast<std::size_t>(chunk.proc)].push_back(
        Interval{chunk.start, chunk.finish()});
  }
  for (auto& intervals : per_proc) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start;
              });
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_LE(intervals[i - 1].finish, intervals[i].start + 1e-9);
    }
  }
}

double total_chunk_work(const DivisibleFillResult& result, int job) {
  double sum = 0.0;
  for (const auto& chunk : result.chunks) {
    if (chunk.job == job) sum += chunk.duration;
  }
  return sum;
}

TEST(Divisible, FillsEmptyMachine) {
  const Schedule schedule(4, 0);  // nothing scheduled
  const auto result =
      fill_idle_with_divisible(schedule, {{8.0, 1.0}}, /*horizon=*/10.0);
  EXPECT_TRUE(result.all_placed);
  EXPECT_NEAR(total_chunk_work(result, 0), 8.0, 1e-9);
  // 8 units of work across 4 idle processors from t=0: finishes at 2.
  EXPECT_NEAR(result.completion[0], 2.0, 1e-9);
  EXPECT_NEAR(result.idle_capacity, 40.0, 1e-9);
}

TEST(Divisible, RespectsBusyIntervals) {
  Schedule schedule(2, 1);
  schedule.place(0, 0.0, 4.0, {0});  // proc 0 busy [0,4)
  const auto result =
      fill_idle_with_divisible(schedule, {{6.0, 1.0}}, /*horizon=*/5.0);
  EXPECT_TRUE(result.all_placed);
  expect_no_conflicts(schedule, result);
  // Idle: proc 1 [0,5) = 5 units, proc 0 [4,5) = 1 unit. Exactly 6.
  EXPECT_NEAR(result.completion[0], 5.0, 1e-9);
}

TEST(Divisible, ReportsPartialPlacement) {
  Schedule schedule(1, 1);
  schedule.place(0, 0.0, 9.0, {0});
  const auto result =
      fill_idle_with_divisible(schedule, {{5.0, 1.0}}, /*horizon=*/10.0);
  EXPECT_FALSE(result.all_placed);
  EXPECT_NEAR(result.placed_work[0], 1.0, 1e-9);  // only [9,10) free
  EXPECT_DOUBLE_EQ(result.completion[0], 0.0);    // not completed
}

TEST(Divisible, SmithOrderAcrossJobs) {
  const Schedule schedule(1, 0);
  // Heavy-per-work job must get the early capacity.
  const auto result = fill_idle_with_divisible(
      schedule, {{4.0, 1.0}, {4.0, 9.0}}, /*horizon=*/8.0);
  EXPECT_TRUE(result.all_placed);
  EXPECT_NEAR(result.completion[1], 4.0, 1e-9);  // valuable job first
  EXPECT_NEAR(result.completion[0], 8.0, 1e-9);
  EXPECT_NEAR(result.weighted_completion_sum, 9.0 * 4.0 + 1.0 * 8.0, 1e-9);
}

TEST(Divisible, WorkConservation) {
  Rng rng(12);
  const Instance instance =
      generate_instance(WorkloadFamily::Mixed, 20, 8, rng);
  const auto moldable = demt_schedule(instance);
  const double horizon = moldable.schedule.cmax() * 1.5;
  std::vector<DivisibleJob> jobs = {{3.0, 2.0}, {7.5, 1.0}, {1.2, 5.0}};
  const auto result =
      fill_idle_with_divisible(moldable.schedule, jobs, horizon);
  expect_no_conflicts(moldable.schedule, result);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_NEAR(total_chunk_work(result, static_cast<int>(j)),
                result.placed_work[j], 1e-9);
    EXPECT_LE(result.placed_work[j], jobs[j].work + 1e-9);
  }
  double chunk_total = 0.0;
  for (const auto& chunk : result.chunks) chunk_total += chunk.duration;
  EXPECT_LE(chunk_total, result.idle_capacity + 1e-9);
}

TEST(Divisible, ChunksStayWithinHorizon) {
  Rng rng(13);
  const Instance instance =
      generate_instance(WorkloadFamily::HighlyParallel, 15, 8, rng);
  const auto moldable = demt_schedule(instance);
  const double horizon = moldable.schedule.cmax();  // no tail capacity
  const auto result = fill_idle_with_divisible(moldable.schedule,
                                               {{1e6, 1.0}}, horizon);
  EXPECT_FALSE(result.all_placed);
  for (const auto& chunk : result.chunks) {
    EXPECT_LE(chunk.finish(), horizon + 1e-9);
  }
}

TEST(Divisible, UtilisationReachesOneWithEnoughFiller) {
  Rng rng(14);
  const Instance instance =
      generate_instance(WorkloadFamily::WeaklyParallel, 10, 4, rng);
  const auto moldable = demt_schedule(instance);
  const double horizon = moldable.schedule.cmax();
  const auto result = fill_idle_with_divisible(moldable.schedule,
                                               {{1e9, 1.0}}, horizon);
  // The filler consumes every idle second below the moldable makespan.
  EXPECT_NEAR(result.placed_work[0], result.idle_capacity, 1e-6);
}

TEST(Divisible, Validation) {
  const Schedule schedule(2, 0);
  EXPECT_THROW(fill_idle_with_divisible(schedule, {{0.0, 1.0}}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(fill_idle_with_divisible(schedule, {{1.0, 0.0}}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(fill_idle_with_divisible(schedule, {{1.0, 1.0}}, -1.0),
               std::invalid_argument);
}

TEST(Divisible, ZeroHorizonPlacesNothing) {
  const Schedule schedule(4, 0);
  const auto result = fill_idle_with_divisible(schedule, {{1.0, 1.0}}, 0.0);
  EXPECT_FALSE(result.all_placed);
  EXPECT_TRUE(result.chunks.empty());
  EXPECT_DOUBLE_EQ(result.idle_capacity, 0.0);
}

}  // namespace
}  // namespace moldsched
