#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/rng.hpp"

namespace moldsched {
namespace {

TEST(Simplex, TrivialUnconstrainedMinimumAtLowerBounds) {
  LpProblem lp;
  lp.num_vars = 3;
  lp.objective = {1.0, 2.0, 3.0};
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::Optimal);
  EXPECT_DOUBLE_EQ(solution.objective, 0.0);
}

TEST(Simplex, NegativeCostsDriveToUpperBounds) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -2.0};
  lp.upper = {3.0, 4.0};
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::Optimal);
  EXPECT_DOUBLE_EQ(solution.objective, -11.0);
  EXPECT_DOUBLE_EQ(solution.x[0], 3.0);
  EXPECT_DOUBLE_EQ(solution.x[1], 4.0);
}

TEST(Simplex, ClassicTwoVariableLp) {
  // min -x - y s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0.
  // Optimum at intersection: x = 8/5, y = 6/5, objective -14/5.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -1.0};
  lp.rows.push_back({{{0, 1.0}, {1, 2.0}}, Relation::LessEq, 4.0});
  lp.rows.push_back({{{0, 3.0}, {1, 1.0}}, Relation::LessEq, 6.0});
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::Optimal);
  EXPECT_NEAR(solution.objective, -14.0 / 5.0, 1e-9);
  EXPECT_NEAR(solution.x[0], 8.0 / 5.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 6.0 / 5.0, 1e-9);
}

TEST(Simplex, GreaterEqAndEqualityRows) {
  // min 2x + 3y s.t. x + y >= 4, x - y = 1, x,y >= 0.
  // => x = 2.5, y = 1.5, objective 9.5.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {2.0, 3.0};
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, Relation::GreaterEq, 4.0});
  lp.rows.push_back({{{0, 1.0}, {1, -1.0}}, Relation::Equal, 1.0});
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::Optimal);
  EXPECT_NEAR(solution.objective, 9.5, 1e-9);
  EXPECT_NEAR(solution.x[0], 2.5, 1e-9);
  EXPECT_NEAR(solution.x[1], 1.5, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 3 cannot hold together.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.rows.push_back({{{0, 1.0}}, Relation::LessEq, 1.0});
  lp.rows.push_back({{{0, 1.0}}, Relation::GreaterEq, 3.0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Infeasible);
}

TEST(Simplex, UpperBoundsCanMakeInfeasible) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {0.0, 0.0};
  lp.upper = {1.0, 1.0};
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, Relation::GreaterEq, 3.0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with x free above.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Unbounded);
}

TEST(Simplex, BoundedAboveIsNotUnbounded) {
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  lp.upper = {7.5};
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::Optimal);
  EXPECT_DOUBLE_EQ(solution.objective, -7.5);
}

TEST(Simplex, NegativeRhsRowsHandled) {
  // x - y <= -2 (i.e. y >= x + 2), min y => x=0, y=2.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {0.0, 1.0};
  lp.rows.push_back({{{0, 1.0}, {1, -1.0}}, Relation::LessEq, -2.0});
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::Optimal);
  EXPECT_NEAR(solution.objective, 2.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -1.0};
  lp.rows.push_back({{{0, 1.0}}, Relation::LessEq, 1.0});
  lp.rows.push_back({{{0, 1.0}, {1, 0.0}}, Relation::LessEq, 1.0});
  lp.rows.push_back({{{0, 2.0}}, Relation::LessEq, 2.0});
  lp.rows.push_back({{{1, 1.0}}, Relation::LessEq, 1.0});
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::Optimal);
  EXPECT_NEAR(solution.objective, -2.0, 1e-9);
}

TEST(Simplex, TransportationLikeProblem) {
  // Two suppliers (cap 10, 20), two consumers (demand 15 each), unit costs
  // c = [[1, 4], [2, 1]]. Optimum: supplier0 -> consumer0 (10),
  // supplier1 -> consumer0 (5), supplier1 -> consumer1 (15): cost 35.
  LpProblem lp;
  lp.num_vars = 4;  // x00 x01 x10 x11
  lp.objective = {1.0, 4.0, 2.0, 1.0};
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, Relation::LessEq, 10.0});
  lp.rows.push_back({{{2, 1.0}, {3, 1.0}}, Relation::LessEq, 20.0});
  lp.rows.push_back({{{0, 1.0}, {2, 1.0}}, Relation::GreaterEq, 15.0});
  lp.rows.push_back({{{1, 1.0}, {3, 1.0}}, Relation::GreaterEq, 15.0});
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::Optimal);
  EXPECT_NEAR(solution.objective, 35.0, 1e-8);
}

TEST(Simplex, RandomLpsSatisfyConstraintsAtOptimum) {
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    LpProblem lp;
    lp.num_vars = 5;
    lp.objective.resize(5);
    lp.upper.assign(5, 10.0);
    for (auto& c : lp.objective) c = rng.uniform(-2.0, 2.0);
    for (int r = 0; r < 4; ++r) {
      LpProblem::Row row;
      for (int j = 0; j < 5; ++j) {
        row.coeffs.emplace_back(j, rng.uniform(0.0, 1.0));
      }
      row.rel = Relation::LessEq;
      row.rhs = rng.uniform(5.0, 15.0);
      lp.rows.push_back(std::move(row));
    }
    const auto solution = solve_lp(lp);
    ASSERT_EQ(solution.status, LpStatus::Optimal) << "trial " << trial;
    for (const auto& row : lp.rows) {
      double lhs = 0.0;
      for (const auto& [j, v] : row.coeffs) {
        lhs += v * solution.x[static_cast<std::size_t>(j)];
      }
      EXPECT_LE(lhs, row.rhs + 1e-6);
    }
    for (double x : solution.x) {
      EXPECT_GE(x, -1e-9);
      EXPECT_LE(x, 10.0 + 1e-9);
    }
  }
}

TEST(Simplex, RandomLpsMatchBruteForceVertexEnumeration) {
  // 2-variable LPs with <= rows: the optimum lies on a vertex of the
  // feasible polygon; enumerate all candidate vertices explicitly.
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const int rows = 3;
    std::vector<std::array<double, 3>> cons;  // a*x + b*y <= c
    for (int r = 0; r < rows; ++r) {
      cons.push_back({rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0),
                      rng.uniform(1.0, 5.0)});
    }
    const double cx = rng.uniform(-1.0, 1.0), cy = rng.uniform(-1.0, 1.0);
    const double ub = 6.0;

    LpProblem lp;
    lp.num_vars = 2;
    lp.objective = {cx, cy};
    lp.upper = {ub, ub};
    for (const auto& c : cons) {
      lp.rows.push_back({{{0, c[0]}, {1, c[1]}}, Relation::LessEq, c[2]});
    }
    const auto solution = solve_lp(lp);
    ASSERT_EQ(solution.status, LpStatus::Optimal);

    // Brute force: all intersections of constraint/bound lines.
    std::vector<std::array<double, 3>> lines = cons;  // as equalities
    lines.push_back({1.0, 0.0, 0.0});
    lines.push_back({0.0, 1.0, 0.0});
    lines.push_back({1.0, 0.0, ub});
    lines.push_back({0.0, 1.0, ub});
    double best = 1e100;
    auto feasible = [&](double x, double y) {
      if (x < -1e-9 || y < -1e-9 || x > ub + 1e-9 || y > ub + 1e-9)
        return false;
      for (const auto& c : cons) {
        if (c[0] * x + c[1] * y > c[2] + 1e-9) return false;
      }
      return true;
    };
    for (std::size_t a = 0; a < lines.size(); ++a) {
      for (std::size_t b = a + 1; b < lines.size(); ++b) {
        const double det = lines[a][0] * lines[b][1] - lines[a][1] * lines[b][0];
        if (std::abs(det) < 1e-12) continue;
        const double x = (lines[a][2] * lines[b][1] - lines[a][1] * lines[b][2]) / det;
        const double y = (lines[a][0] * lines[b][2] - lines[a][2] * lines[b][0]) / det;
        if (feasible(x, y)) best = std::min(best, cx * x + cy * y);
      }
    }
    ASSERT_LT(best, 1e99);  // origin is always feasible
    EXPECT_NEAR(solution.objective, best, 1e-6) << "trial " << trial;
  }
}

TEST(Simplex, ProblemValidation) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0};  // wrong size
  EXPECT_THROW(solve_lp(lp), std::invalid_argument);

  lp.objective = {1.0, 1.0};
  lp.rows.push_back({{{0, 1.0}, {0, 2.0}}, Relation::LessEq, 1.0});
  EXPECT_THROW(solve_lp(lp), std::invalid_argument);  // repeated column

  lp.rows.clear();
  lp.rows.push_back({{{5, 1.0}}, Relation::LessEq, 1.0});
  EXPECT_THROW(solve_lp(lp), std::invalid_argument);  // index out of range
}

TEST(Simplex, EmptyProblemFeasibility) {
  LpProblem lp;  // zero variables
  lp.rows.push_back({{}, Relation::LessEq, 1.0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Optimal);
  lp.rows.push_back({{}, Relation::GreaterEq, 1.0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Infeasible);
}

}  // namespace
}  // namespace moldsched
