/// Small-scale regression checks of the paper's qualitative claims — the
/// same comparisons the figures make, pinned to fixed seeds and generous
/// margins so they are deterministic and fast. Full-scale numbers live in
/// the bench binaries; these tests keep the *shapes* from silently
/// regressing.

#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace moldsched {
namespace {

PointResult point(WorkloadFamily family, int n, int runs = 4, int m = 64) {
  PointConfig config;
  config.family = family;
  config.n = n;
  config.m = m;
  config.runs = runs;
  config.seed = 20040627;
  return run_point(config, standard_algorithms());
}

double minsum(const PointResult& r, const std::string& name) {
  return r.stats.at(name).minsum_ratio.ratio();
}
double cmax(const PointResult& r, const std::string& name) {
  return r.stats.at(name).cmax_ratio.ratio();
}

TEST(Shapes, HighlyParallelDemtBestOnMinsumAtScale) {
  // Paper Fig. 4: "On the minsum criterion, our algorithm is clearly the
  // best one" (at moderate-to-large n; Gang competes only at small n).
  const auto r = point(WorkloadFamily::HighlyParallel, 120);
  EXPECT_LT(minsum(r, "DEMT"), minsum(r, "Gang"));
  EXPECT_LT(minsum(r, "DEMT"), minsum(r, "Sequential"));
  EXPECT_LT(minsum(r, "DEMT"), minsum(r, "List"));
}

TEST(Shapes, HighlyParallelGangDegradesWithN) {
  // Paper Fig. 4: Gang good with few tasks, bad with many.
  const auto small = point(WorkloadFamily::HighlyParallel, 16);
  const auto large = point(WorkloadFamily::HighlyParallel, 160);
  EXPECT_LT(minsum(small, "Gang"), minsum(large, "Gang"));
  EXPECT_GT(minsum(large, "Gang"), minsum(large, "DEMT"));
}

TEST(Shapes, SequentialImprovesWithN) {
  // Paper Fig. 4: "sequential good for a large number of tasks only".
  const auto small = point(WorkloadFamily::HighlyParallel, 16);
  const auto large = point(WorkloadFamily::HighlyParallel, 160);
  EXPECT_GT(minsum(small, "Sequential"), minsum(large, "Sequential"));
}

TEST(Shapes, WeaklyParallelDemtBoundedByTwoIsh) {
  // Paper Fig. 3: the worst case for DEMT, yet "the performance ratio for
  // Cmax is no more than 2" (small-m noise allowed for in the margin).
  const auto r = point(WorkloadFamily::WeaklyParallel, 120);
  EXPECT_LE(cmax(r, "DEMT"), 2.4);
  EXPECT_LE(minsum(r, "DEMT"), 3.0);
}

TEST(Shapes, WeaklyParallelListFamilyNearOnCmax) {
  // Paper Fig. 3: the list algorithms sit around 1.5 on Cmax, clearly
  // better than DEMT there.
  const auto r = point(WorkloadFamily::WeaklyParallel, 120);
  EXPECT_LE(cmax(r, "List"), 1.8);
  EXPECT_LE(cmax(r, "LPTF"), 1.8);
  EXPECT_LE(cmax(r, "SAF"), 1.8);
  EXPECT_GE(cmax(r, "DEMT"), cmax(r, "List") - 0.2);
}

TEST(Shapes, MixedSafCompetitiveOnMinsum) {
  // Paper Fig. 5: "SAF is better than our algorithm" on mixed instances.
  const auto r = point(WorkloadFamily::Mixed, 120);
  EXPECT_LE(minsum(r, "SAF"), minsum(r, "DEMT") * 1.15);
  // And DEMT stays stable around 2 on both criteria.
  EXPECT_LE(minsum(r, "DEMT"), 3.0);
  EXPECT_LE(cmax(r, "DEMT"), 2.6);
}

TEST(Shapes, CirneDemtOutperformsOnMinsum) {
  // Paper Fig. 6: "our algorithm clearly outperforms the other ones for
  // the minsum criterion" on the realistic workload.
  const auto r = point(WorkloadFamily::Cirne, 120);
  for (const char* name : {"Gang", "Sequential", "List", "LPTF"}) {
    EXPECT_LT(minsum(r, "DEMT"), minsum(r, name)) << name;
  }
}

TEST(Shapes, ListAllotmentsKeepCmaxBelowTwoOnParallelWork) {
  // Paper §4.2: "the allotment computed for list algorithms is quite good,
  // as Cmax performance ratio of these algorithms is always smaller than 2".
  const auto r = point(WorkloadFamily::HighlyParallel, 120);
  EXPECT_LT(cmax(r, "List"), 2.0);
  EXPECT_LT(cmax(r, "LPTF"), 2.0);
  EXPECT_LT(cmax(r, "SAF"), 2.0);
}

TEST(Shapes, GangOffTheChartOnWeaklyParallelCmax) {
  // Paper Fig. 3: "Gang scheduling does not appear in the presented range
  // for Cmax" — weakly parallel tasks waste almost the whole machine.
  const auto r = point(WorkloadFamily::WeaklyParallel, 60, 3);
  EXPECT_GT(cmax(r, "Gang"), 3.5);
}

TEST(Shapes, MinsumRatiosNeverBelowOne) {
  for (auto family : all_families()) {
    const auto r = point(family, 40, 3, 32);
    for (const auto& name : r.algorithm_order) {
      EXPECT_GE(r.stats.at(name).minsum_ratio.min_ratio(), 1.0 - 1e-6)
          << family_name(family) << "/" << name;
      EXPECT_GE(r.stats.at(name).cmax_ratio.min_ratio(), 1.0 - 1e-6)
          << family_name(family) << "/" << name;
    }
  }
}

}  // namespace
}  // namespace moldsched
