#include "tasks/time_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace moldsched {
namespace {

TEST(TimeGrid, PaperFormula) {
  // cmax = 16, tmin = 1 -> K = 4, t_j = 16 / 2^(4-j).
  TimeGrid grid(16.0, 1.0);
  EXPECT_EQ(grid.K(), 4);
  EXPECT_DOUBLE_EQ(grid.t(0), 1.0);
  EXPECT_DOUBLE_EQ(grid.t(1), 2.0);
  EXPECT_DOUBLE_EQ(grid.t(4), 16.0);
  EXPECT_DOUBLE_EQ(grid.t(5), 32.0);
}

TEST(TimeGrid, SmallestBatchHoldsTmin) {
  // t_0 in [tmin, 2*tmin): "the smallest useful batch size (such that at
  // least one task can be done)".
  for (double cmax : {3.7, 10.0, 129.3}) {
    for (double tmin : {0.2, 1.0, 3.0}) {
      if (tmin > cmax) continue;
      TimeGrid grid(cmax, tmin);
      EXPECT_GE(grid.t(0), tmin * (1.0 - 1e-12));
      EXPECT_LT(grid.t(0), 2.0 * tmin);
    }
  }
}

TEST(TimeGrid, BatchGeometry) {
  TimeGrid grid(16.0, 1.0);
  for (int j = 0; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(grid.batch_start(j), grid.t(j));
    EXPECT_DOUBLE_EQ(grid.batch_end(j), grid.t(j + 1));
    // Each batch is as long as its own start time: t_{j+1} = 2 t_j.
    EXPECT_DOUBLE_EQ(grid.batch_length(j), grid.t(j));
    EXPECT_DOUBLE_EQ(grid.batch_end(j) - grid.batch_start(j),
                     grid.batch_length(j));
  }
}

TEST(TimeGrid, DoublesForever) {
  TimeGrid grid(8.0, 1.0);
  for (int j = 0; j < 20; ++j) {
    EXPECT_DOUBLE_EQ(grid.t(j + 1), 2.0 * grid.t(j));
  }
}

TEST(TimeGrid, TminLargerThanCmaxClampsToZero) {
  TimeGrid grid(4.0, 5.0);
  EXPECT_EQ(grid.K(), 0);
  EXPECT_DOUBLE_EQ(grid.t(0), 4.0);
}

TEST(TimeGrid, NonIntegerRatio) {
  // cmax/tmin = 10 -> K = 3, t_0 = 10/8 = 1.25.
  TimeGrid grid(10.0, 1.0);
  EXPECT_EQ(grid.K(), 3);
  EXPECT_DOUBLE_EQ(grid.t(0), 1.25);
  EXPECT_DOUBLE_EQ(grid.t(3), 10.0);
}

TEST(TimeGrid, Validation) {
  EXPECT_THROW(TimeGrid(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TimeGrid(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(TimeGrid(-1.0, 1.0), std::invalid_argument);
  TimeGrid grid(4.0, 1.0);
  EXPECT_THROW(grid.t(-1), std::invalid_argument);
}

}  // namespace
}  // namespace moldsched
