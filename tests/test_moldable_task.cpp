#include "tasks/moldable_task.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace moldsched {
namespace {

MoldableTask ideal(double seq, int m, double w = 1.0) {
  // Perfectly moldable: p(k) = seq / k (linear speedup, constant work).
  std::vector<double> times;
  for (int k = 1; k <= m; ++k) times.push_back(seq / k);
  return MoldableTask(std::move(times), w);
}

TEST(MoldableTask, BasicAccessors) {
  MoldableTask task({10.0, 6.0, 5.0}, 2.5);
  EXPECT_EQ(task.max_procs(), 3);
  EXPECT_EQ(task.min_procs(), 1);
  EXPECT_DOUBLE_EQ(task.weight(), 2.5);
  EXPECT_DOUBLE_EQ(task.time(1), 10.0);
  EXPECT_DOUBLE_EQ(task.time(3), 5.0);
  EXPECT_DOUBLE_EQ(task.work(1), 10.0);
  EXPECT_DOUBLE_EQ(task.work(2), 12.0);
  EXPECT_DOUBLE_EQ(task.work(3), 15.0);
  EXPECT_FALSE(task.rigid());
}

TEST(MoldableTask, TimeOutOfRangeThrows) {
  MoldableTask task({4.0, 3.0}, 1.0);
  EXPECT_THROW(task.time(0), std::out_of_range);
  EXPECT_THROW(task.time(3), std::out_of_range);
}

TEST(MoldableTask, ConstructorValidation) {
  EXPECT_THROW(MoldableTask({}, 1.0), std::invalid_argument);
  EXPECT_THROW(MoldableTask({1.0, -2.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(MoldableTask({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(MoldableTask({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(MoldableTask({1.0, 0.9}, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(MoldableTask({1.0, 0.9}, 1.0, 3), std::invalid_argument);
}

TEST(MoldableTask, MinTimeAndWork) {
  MoldableTask task({10.0, 6.0, 5.0}, 1.0);
  EXPECT_DOUBLE_EQ(task.min_time(), 5.0);
  EXPECT_DOUBLE_EQ(task.min_work(), 10.0);
  EXPECT_EQ(task.min_work_procs(), 1);
}

TEST(MoldableTask, MinTimeRespectsMinProcs) {
  MoldableTask rigid({10.0, 6.0, 5.0}, 1.0, /*min_procs=*/3);
  EXPECT_TRUE(rigid.rigid());
  EXPECT_DOUBLE_EQ(rigid.min_time(), 5.0);
  EXPECT_DOUBLE_EQ(rigid.min_work(), 15.0);
  EXPECT_EQ(rigid.min_work_procs(), 3);
}

TEST(MoldableTask, CanonicalAllotment) {
  MoldableTask task({10.0, 6.0, 5.0}, 1.0);
  EXPECT_EQ(task.canonical_allotment(20.0), 1);
  EXPECT_EQ(task.canonical_allotment(10.0), 1);
  EXPECT_EQ(task.canonical_allotment(7.0), 2);
  EXPECT_EQ(task.canonical_allotment(5.0), 3);
  EXPECT_EQ(task.canonical_allotment(4.9), 0);  // nothing fits
}

TEST(MoldableTask, CanonicalAllotmentRespectsMinProcs) {
  MoldableTask task({10.0, 6.0, 5.0}, 1.0, /*min_procs=*/2);
  EXPECT_EQ(task.canonical_allotment(20.0), 2);
  EXPECT_EQ(task.canonical_allotment(5.5), 3);
}

TEST(MoldableTask, MinWorkAllotmentMonotoneCase) {
  MoldableTask task({10.0, 6.0, 5.0}, 1.0);
  // For monotone tasks the min-work allotment equals the canonical one.
  for (double d : {4.0, 5.0, 6.0, 7.0, 10.0, 15.0}) {
    EXPECT_EQ(task.min_work_allotment(d), task.canonical_allotment(d)) << d;
  }
}

TEST(MoldableTask, MinWorkAllotmentNonMonotoneCase) {
  // Non-monotone work: p = {9, 6, 2}; works are {9, 12, 6}. Under deadline
  // 9 the canonical allotment is 1 (work 9) but 3 procs give work 6.
  MoldableTask task({9.0, 6.0, 2.0}, 1.0);
  EXPECT_EQ(task.canonical_allotment(9.0), 1);
  EXPECT_EQ(task.min_work_allotment(9.0), 3);
}

TEST(MoldableTask, MonotonicityPredicates) {
  MoldableTask good({10.0, 6.0, 5.0}, 1.0);
  EXPECT_TRUE(good.is_time_monotone());
  EXPECT_TRUE(good.is_work_monotone());

  MoldableTask bad_time({5.0, 6.0}, 1.0);
  EXPECT_FALSE(bad_time.is_time_monotone());

  MoldableTask bad_work({10.0, 4.0}, 1.0);  // work 10 -> 8 decreases
  EXPECT_TRUE(bad_work.is_time_monotone());
  EXPECT_FALSE(bad_work.is_work_monotone());
}

TEST(MoldableTask, EnforceMonotonicityRepairsBothDirections) {
  MoldableTask task({10.0, 12.0, 2.0}, 1.0);  // violates both properties
  task.enforce_monotonicity();
  EXPECT_TRUE(task.is_time_monotone());
  EXPECT_TRUE(task.is_work_monotone());
  EXPECT_DOUBLE_EQ(task.time(1), 10.0);  // p(1) untouched
}

TEST(MoldableTask, EnforceMonotonicityIdempotentOnValid) {
  MoldableTask task({10.0, 6.0, 5.0}, 1.0);
  task.enforce_monotonicity();
  EXPECT_DOUBLE_EQ(task.time(1), 10.0);
  EXPECT_DOUBLE_EQ(task.time(2), 6.0);
  EXPECT_DOUBLE_EQ(task.time(3), 5.0);
}

TEST(MoldableTask, FromSpeedupLinear) {
  const auto task = MoldableTask::from_speedup(
      12.0, 4, 2.0, [](int k) { return static_cast<double>(k); });
  EXPECT_DOUBLE_EQ(task.time(1), 12.0);
  EXPECT_DOUBLE_EQ(task.time(4), 3.0);
  EXPECT_TRUE(task.is_time_monotone());
  EXPECT_TRUE(task.is_work_monotone());
}

TEST(MoldableTask, FromSpeedupValidation) {
  EXPECT_THROW(
      MoldableTask::from_speedup(1.0, 0, 1.0, [](int) { return 1.0; }),
      std::invalid_argument);
  EXPECT_THROW(
      MoldableTask::from_speedup(0.0, 2, 1.0, [](int) { return 1.0; }),
      std::invalid_argument);
  EXPECT_THROW(
      MoldableTask::from_speedup(1.0, 2, 1.0, [](int) { return 0.0; }),
      std::invalid_argument);
}

TEST(MoldableTask, IdealTaskHasConstantWork) {
  const auto task = ideal(20.0, 8);
  for (int k = 1; k <= 8; ++k) {
    EXPECT_NEAR(task.work(k), 20.0, 1e-12);
  }
}

}  // namespace
}  // namespace moldsched
