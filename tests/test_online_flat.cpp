/// The flat on-line path's regression contract: the workspace-based core
/// must reproduce the pre-refactor object path bit-for-bit — every
/// placement, every metric, every batch boundary — on generated workloads,
/// with and without reservations, for every off-line plug-in. Also covers
/// the flat event-simulator core against the Schedule-based wrapper.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/demt.hpp"
#include "engine/engine.hpp"
#include "sched/validator.hpp"
#include "sim/event_sim.hpp"
#include "sim/online.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

OfflineScheduler demt_offline() {
  return [](const Instance& instance) {
    return demt_schedule(instance).schedule;
  };
}

std::vector<OnlineJob> make_stream(WorkloadFamily family, int count, int m,
                                   double max_gap, Rng& rng) {
  std::vector<OnlineJob> jobs;
  double release = 0.0;
  for (int i = 0; i < count; ++i) {
    Instance tmp = generate_instance(family, 1, m, rng);
    jobs.push_back(OnlineJob{tmp.task(0), release});
    release += rng.uniform(0.0, max_gap);
  }
  return jobs;
}

void expect_bit_identical(const OnlineResult& flat,
                          const OnlineResult& reference) {
  ASSERT_EQ(flat.schedule.num_tasks(), reference.schedule.num_tasks());
  for (int t = 0; t < flat.schedule.num_tasks(); ++t) {
    const Placement& pf = flat.schedule.placement(t);
    const Placement& pr = reference.schedule.placement(t);
    EXPECT_EQ(pf.start, pr.start) << "job " << t;
    EXPECT_EQ(pf.duration, pr.duration) << "job " << t;
    EXPECT_EQ(pf.procs, pr.procs) << "job " << t;
  }
  EXPECT_EQ(flat.completion, reference.completion);
  EXPECT_EQ(flat.flow, reference.flow);
  EXPECT_EQ(flat.cmax, reference.cmax);
  EXPECT_EQ(flat.weighted_completion_sum, reference.weighted_completion_sum);
  EXPECT_EQ(flat.weighted_flow_sum, reference.weighted_flow_sum);
  EXPECT_EQ(flat.num_batches, reference.num_batches);
  EXPECT_EQ(flat.batch_starts, reference.batch_starts);
}

TEST(OnlineFlat, MatchesReferenceOnGeneratedWorkloads) {
  Rng rng(20040627);
  for (auto family : {WorkloadFamily::Cirne, WorkloadFamily::Mixed,
                      WorkloadFamily::HighlyParallel}) {
    const auto jobs = make_stream(family, 18, 8, 1.5, rng);
    const auto flat = online_batch_schedule(8, jobs, demt_offline());
    const auto reference =
        online_batch_schedule_reference(8, jobs, demt_offline());
    expect_bit_identical(flat, reference);
  }
}

TEST(OnlineFlat, MatchesReferenceWithReservations) {
  Rng rng(99);
  const auto jobs = make_stream(WorkloadFamily::Cirne, 14, 8, 1.0, rng);
  const std::vector<NodeReservation> reservations = {
      {0, 2.0, 6.0}, {1, 2.0, 6.0}, {7, 0.0, 3.0}};
  const auto flat =
      online_batch_schedule(8, jobs, demt_offline(), reservations);
  const auto reference =
      online_batch_schedule_reference(8, jobs, demt_offline(), reservations);
  expect_bit_identical(flat, reference);
}

TEST(OnlineFlat, MatchesReferenceWithBaselineScheduler) {
  Rng rng(7);
  const auto jobs = make_stream(WorkloadFamily::WeaklyParallel, 12, 6, 0.8, rng);
  const OfflineScheduler gang = [](const Instance& instance) {
    return gang_schedule(instance);
  };
  expect_bit_identical(online_batch_schedule(6, jobs, gang),
                       online_batch_schedule_reference(6, jobs, gang));
}

TEST(OnlineFlat, WorkspaceReuseIsStateless) {
  Rng rng(11);
  const auto jobs_a = make_stream(WorkloadFamily::Mixed, 15, 8, 1.2, rng);
  const auto jobs_b = make_stream(WorkloadFamily::Cirne, 9, 8, 0.4, rng);
  OnlineWorkspace ws;
  FlatOnlineResult out;
  const auto offline = wrap_offline(demt_offline());
  // Interleave two different streams through ONE workspace/result pair and
  // check both runs against fresh-state runs.
  online_batch_schedule_into(8, jobs_a, offline, {}, ws, out);
  const double cmax_a = out.cmax;
  const double wc_a = out.weighted_completion_sum;
  online_batch_schedule_into(8, jobs_b, offline, {}, ws, out);
  const auto fresh_b = online_batch_schedule(8, jobs_b, demt_offline());
  EXPECT_EQ(out.cmax, fresh_b.cmax);
  EXPECT_EQ(out.weighted_completion_sum, fresh_b.weighted_completion_sum);
  EXPECT_EQ(out.num_batches, fresh_b.num_batches);
  online_batch_schedule_into(8, jobs_a, offline, {}, ws, out);
  EXPECT_EQ(out.cmax, cmax_a);
  EXPECT_EQ(out.weighted_completion_sum, wc_a);
}

TEST(OnlineFlat, FlatListOfflinePluginYieldsFeasibleSchedule) {
  Rng rng(23);
  const int m = 8;
  const auto jobs = make_stream(WorkloadFamily::Mixed, 20, m, 1.0, rng);
  OnlineWorkspace ws;
  FlatOnlineResult out;
  const FlatOfflineScheduler offline = [](const Instance& batch,
                                          OnlineWorkspace& ows,
                                          FlatPlacements& placed) {
    flat_list_schedule(batch, ows.list, placed);
  };
  online_batch_schedule_into(m, jobs, offline, {}, ws, out);

  Instance reference(m);
  ValidationOptions options;
  for (const auto& job : jobs) {
    reference.add_task(job.task);
    options.releases.push_back(job.release);
  }
  const auto report =
      validate_schedule(out.schedule.to_schedule(m), reference, options);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_GT(out.num_batches, 0);
}

TEST(OnlineFlat, FixpointBudgetSurvivesTimeJumpThenReblock) {
  // Regression: m=1 with back-to-back reservations [0,10) and [9,20) on the
  // only processor. The batch is scheduled, blocked, the machine goes fully
  // reserved, the clock jumps to 10 — still inside the second reservation.
  // The old `iteration <= m` budget expired exactly here and silently
  // lifted the stale batch onto the reserved processor at t=10; the
  // corrected budget converges to the first genuinely free instant, t=20.
  const std::vector<OnlineJob> jobs = {{MoldableTask({5.0}, 1.0), 0.0}};
  const std::vector<NodeReservation> reservations = {{0, 0.0, 10.0},
                                                     {0, 9.0, 20.0}};
  const auto flat =
      online_batch_schedule(1, jobs, demt_offline(), reservations);
  EXPECT_GE(flat.schedule.placement(0).start, 20.0 - 1e-9);
  const auto reference =
      online_batch_schedule_reference(1, jobs, demt_offline(), reservations);
  expect_bit_identical(flat, reference);
}

TEST(OnlineFlat, ThrowsLikeTheReference) {
  const MoldableTask task({1.0}, 1.0);
  EXPECT_THROW(
      online_batch_schedule(2, {}, demt_offline()), std::invalid_argument);
  EXPECT_THROW(online_batch_schedule(2, {{task, -1.0}}, demt_offline()),
               std::invalid_argument);
  EXPECT_THROW(online_batch_schedule(2, {{task, 0.0}}, demt_offline(),
                                     {{5, 0.0, 1.0}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- event sim

TEST(EventSimFlat, FlatCoreMatchesScheduleWrapper) {
  Rng rng(64);
  for (auto family : {WorkloadFamily::Mixed, WorkloadFamily::Cirne}) {
    const Instance instance = generate_instance(family, 40, 12, rng);
    const auto result = demt_schedule(instance);
    const SimResult via_schedule =
        simulate_execution(result.schedule, instance);

    FlatPlacements flat;
    flat.assign_from(result.schedule);
    const SimResult via_flat = simulate_execution(flat, instance);

    EXPECT_EQ(via_flat.ok, via_schedule.ok);
    EXPECT_EQ(via_flat.completion, via_schedule.completion);
    EXPECT_EQ(via_flat.cmax, via_schedule.cmax);
    EXPECT_EQ(via_flat.weighted_completion_sum,
              via_schedule.weighted_completion_sum);
    EXPECT_EQ(via_flat.busy_area, via_schedule.busy_area);
    EXPECT_EQ(via_flat.utilisation, via_schedule.utilisation);
    EXPECT_EQ(via_flat.events, via_schedule.events);
  }
}

TEST(EventSimFlat, WorkspaceReuseAcrossRuns) {
  Rng rng(5);
  SimWorkspace ws;
  SimResult out;
  for (int round = 0; round < 3; ++round) {
    const Instance instance =
        generate_instance(WorkloadFamily::HighlyParallel, 20, 8, rng);
    const auto result = demt_schedule(instance);
    ws.bridge.assign_from(result.schedule);
    simulate_execution(ws.bridge, instance, ws, out);
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.cmax, result.schedule.cmax());
  }
}

TEST(EventSimFlat, ReportsUnassignedAndOutOfRangeEntries) {
  Instance instance(4);
  instance.add_task(MoldableTask({4.0, 2.5, 2.0, 1.8}, 1.0));
  instance.add_task(MoldableTask({3.0, 1.5, 1.2, 1.0}, 2.0));

  FlatPlacements flat;
  flat.reset(2);
  // Task 0 assigned to an out-of-range processor; task 1 never starts.
  flat.start[0] = 0.0;
  flat.duration[0] = 4.0;
  flat.proc_begin[0] = 0;
  flat.proc_count[0] = 1;
  flat.proc_ids.push_back(9);
  const SimResult sim = simulate_execution(flat, instance);
  EXPECT_FALSE(sim.ok);
  ASSERT_EQ(sim.errors.size(), 2u);
  EXPECT_NE(sim.errors[0].find("outside"), std::string::npos);
  EXPECT_NE(sim.errors[1].find("never starts"), std::string::npos);
}

}  // namespace
}  // namespace moldsched
