/// Contracts of the async submit/poll serving layer
/// (serve/async_scheduler.hpp): results bit-identical to the synchronous
/// SchedulerEngine path for shard counts {1, 2, 4}, admission control with
/// explicit Rejected tickets, drain() after rejection, deadline-triggered
/// flush, slot recycling, and failure propagation.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "serve/async_scheduler.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

std::vector<Instance> make_instances(int count, int n, int m,
                                     std::uint64_t seed) {
  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  Rng rng(seed);
  std::vector<Instance> instances;
  for (int i = 0; i < count; ++i) {
    instances.push_back(generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng));
  }
  return instances;
}

void expect_identical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (int t = 0; t < a.num_tasks(); ++t) {
    const Placement& pa = a.placement(t);
    const Placement& pb = b.placement(t);
    EXPECT_EQ(pa.start, pb.start) << "task " << t;
    EXPECT_EQ(pa.duration, pb.duration) << "task " << t;
    EXPECT_EQ(pa.procs, pb.procs) << "task " << t;
  }
}

std::vector<EngineRequest> make_requests(const std::vector<Instance>& instances,
                                         EngineAlgorithm algorithm,
                                         const DemtOptions& demt = {}) {
  std::vector<EngineRequest> requests(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    requests[i].instance = &instances[i];
    requests[i].algorithm = algorithm;
    requests[i].demt = demt;
  }
  return requests;
}

TEST(AsyncScheduler, BitIdenticalToSyncForShardCounts) {
  const auto instances = make_instances(12, 30, 16, 20040627);
  DemtOptions demt;
  demt.shuffles = 4;
  const auto requests = make_requests(instances, EngineAlgorithm::Demt, demt);

  SchedulerEngine sync(EngineOptions{1, true});
  std::vector<EngineResult> reference;
  sync.schedule_batch(requests, reference);

  for (int shards : {1, 2, 4}) {
    AsyncOptions options;
    options.shards = shards;
    options.max_batch = 3;
    options.queue_capacity = 64;
    options.keep_schedules = true;
    AsyncScheduler async(options);

    std::vector<Ticket> tickets;
    for (const auto& request : requests) {
      tickets.push_back(async.submit(request));
      ASSERT_TRUE(tickets.back().accepted()) << "shards=" << shards;
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      EXPECT_EQ(async.wait(tickets[i]), TicketStatus::Done)
          << "shards=" << shards;
      EngineResult result;
      ASSERT_TRUE(async.take(tickets[i], result));
      EXPECT_EQ(result.cmax, reference[i].cmax) << "shards=" << shards;
      EXPECT_EQ(result.weighted_completion_sum,
                reference[i].weighted_completion_sum)
          << "shards=" << shards;
      ASSERT_TRUE(result.has_schedule);
      expect_identical(result.schedule, reference[i].schedule);
    }
    EXPECT_EQ(async.stats().completed, requests.size());
    EXPECT_EQ(async.in_flight(), 0u);
  }
}

TEST(AsyncScheduler, FlatListMetricsOnlyMatchesSync) {
  const auto instances = make_instances(10, 40, 16, 7);
  const auto requests = make_requests(instances, EngineAlgorithm::FlatList);

  SchedulerEngine sync(EngineOptions{1, false});
  std::vector<EngineResult> reference;
  sync.schedule_batch(requests, reference);

  AsyncOptions options;
  options.shards = 2;
  options.max_batch = 4;
  options.keep_schedules = false;
  AsyncScheduler async(options);
  std::vector<Ticket> tickets;
  for (const auto& request : requests) {
    tickets.push_back(async.submit(request));
  }
  async.drain();
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(async.poll(tickets[i]), TicketStatus::Done);
    EXPECT_GT(async.latency_seconds(tickets[i]), 0.0);
    EngineResult result;
    ASSERT_TRUE(async.take(tickets[i], result));
    EXPECT_FALSE(result.has_schedule);
    EXPECT_EQ(result.cmax, reference[i].cmax);
    EXPECT_EQ(result.weighted_completion_sum,
              reference[i].weighted_completion_sum);
  }
}

TEST(AsyncScheduler, AdmissionControlRejectsBeyondCapacityAndRecovers) {
  const auto instances = make_instances(1, 20, 8, 3);
  const auto requests = make_requests(instances, EngineAlgorithm::FlatList);
  EngineRequest request = requests[0];

  AsyncOptions options;
  options.shards = 2;
  options.queue_capacity = 4;
  options.max_batch = 64;          // never size-flush: tickets stay queued
  options.flush_after_ms = 1e6;    // deadline far away
  AsyncScheduler async(options);

  std::vector<Ticket> accepted;
  for (int i = 0; i < 4; ++i) {
    const Ticket ticket = async.submit(request);
    ASSERT_TRUE(ticket.accepted());
    accepted.push_back(ticket);
  }
  // Queue bound reached: further submissions are rejected, not queued.
  const Ticket rejected = async.submit(request);
  EXPECT_FALSE(rejected.accepted());
  EXPECT_EQ(async.poll(rejected), TicketStatus::Rejected);
  EXPECT_EQ(async.wait(rejected), TicketStatus::Rejected);
  EXPECT_EQ(async.stats().rejected, 1u);
  EXPECT_EQ(async.in_flight(), 4u);

  // drain() after Rejected: the accepted requests still complete.
  async.drain();
  for (const Ticket& ticket : accepted) {
    EXPECT_EQ(async.poll(ticket), TicketStatus::Done);
  }
  // Capacity frees only on take(); then admission recovers.
  EXPECT_FALSE(async.submit(request).accepted());
  EngineResult result;
  ASSERT_TRUE(async.take(accepted[0], result));
  const Ticket again = async.submit(request);
  EXPECT_TRUE(again.accepted());
  EXPECT_EQ(async.wait(again), TicketStatus::Done);
  for (std::size_t i = 1; i < accepted.size(); ++i) {
    ASSERT_TRUE(async.take(accepted[i], result));
  }
  ASSERT_TRUE(async.take(again, result));
  EXPECT_EQ(async.in_flight(), 0u);
}

TEST(AsyncScheduler, WorkloadLargerThanQueueBoundStaysBitIdentical) {
  // Offered load of 24 requests through a bound of 8 slots: submissions
  // beyond the bound are rejected, the caller retires finished tickets and
  // resubmits, and every served result must still be bit-identical to the
  // synchronous batch — for 1, 2 and 4 shards.
  const auto instances = make_instances(24, 25, 12, 19);
  const auto requests = make_requests(instances, EngineAlgorithm::FlatList);
  SchedulerEngine sync(EngineOptions{1, false});
  std::vector<EngineResult> reference;
  sync.schedule_batch(requests, reference);

  for (int shards : {1, 2, 4}) {
    AsyncOptions options;
    options.shards = shards;
    options.max_batch = 4;
    options.queue_capacity = 8;
    AsyncScheduler async(options);

    std::vector<std::pair<std::size_t, Ticket>> outstanding;
    std::size_t served = 0;
    bool saw_rejection = false;
    const auto retire_all = [&] {
      for (const auto& [which, ticket] : outstanding) {
        EXPECT_EQ(async.wait(ticket), TicketStatus::Done);
        EngineResult result;
        ASSERT_TRUE(async.take(ticket, result));
        EXPECT_EQ(result.cmax, reference[which].cmax)
            << "shards=" << shards << " request " << which;
        EXPECT_EQ(result.weighted_completion_sum,
                  reference[which].weighted_completion_sum)
            << "shards=" << shards << " request " << which;
        ++served;
      }
      outstanding.clear();
    };
    for (std::size_t i = 0; i < requests.size(); ++i) {
      Ticket ticket = async.submit(requests[i]);
      if (!ticket.accepted()) {
        saw_rejection = true;
        retire_all();  // free every slot, then the resubmit must succeed
        ticket = async.submit(requests[i]);
        ASSERT_TRUE(ticket.accepted());
      }
      outstanding.emplace_back(i, ticket);
    }
    retire_all();
    EXPECT_TRUE(saw_rejection) << "shards=" << shards;
    EXPECT_EQ(served, requests.size());
    EXPECT_GE(async.stats().rejected, 1u);
  }
}

TEST(AsyncScheduler, DeadlineFlushCompletesPartialBatchWithoutWait) {
  const auto instances = make_instances(1, 15, 8, 5);
  const auto requests = make_requests(instances, EngineAlgorithm::FlatList);

  AsyncOptions options;
  options.max_batch = 64;       // a single request never fills the batch
  options.flush_after_ms = 2.0; // the deadline must dispatch it
  AsyncScheduler async(options);
  const Ticket ticket = async.submit(requests[0]);
  ASSERT_TRUE(ticket.accepted());

  // Poll only — no wait(), no flush(): completion proves the deadline path.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (async.poll(ticket) != TicketStatus::Done) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "deadline flush never dispatched the partial batch";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(async.stats().deadline_flushes, 1u);
  EngineResult result;
  EXPECT_TRUE(async.take(ticket, result));
}

TEST(AsyncScheduler, ImmediateDispatchWhenFlushAfterIsZero) {
  const auto instances = make_instances(1, 15, 8, 9);
  const auto requests = make_requests(instances, EngineAlgorithm::FlatList);
  AsyncOptions options;
  options.max_batch = 64;
  options.flush_after_ms = 0.0;  // dispatch on every submit
  AsyncScheduler async(options);
  const Ticket ticket = async.submit(requests[0]);
  EXPECT_EQ(async.wait(ticket), TicketStatus::Done);
  EngineResult result;
  EXPECT_TRUE(async.take(ticket, result));
}

TEST(AsyncScheduler, TakenTicketBecomesInvalidAndSlotIsRecycled) {
  const auto instances = make_instances(1, 10, 4, 11);
  const auto requests = make_requests(instances, EngineAlgorithm::FlatList);
  AsyncOptions options;
  options.queue_capacity = 1;
  options.flush_after_ms = 0.0;
  AsyncScheduler async(options);

  const Ticket first = async.submit(requests[0]);
  ASSERT_EQ(async.wait(first), TicketStatus::Done);
  EngineResult result;
  ASSERT_TRUE(async.take(first, result));
  EXPECT_EQ(async.poll(first), TicketStatus::Invalid);
  EXPECT_FALSE(async.take(first, result));

  // The single slot is reused; the stale ticket stays Invalid.
  const Ticket second = async.submit(requests[0]);
  ASSERT_TRUE(second.accepted());
  EXPECT_EQ(second.slot, first.slot);
  ASSERT_EQ(async.wait(second), TicketStatus::Done);
  EXPECT_EQ(async.poll(first), TicketStatus::Invalid);
  ASSERT_TRUE(async.take(second, result));
}

TEST(AsyncScheduler, FailedBatchReportsErrorPerTicket) {
  // An Instance with zero tasks makes demt_schedule throw inside the
  // engine; the async layer must surface that as Failed, not crash.
  const Instance empty(8);
  EngineRequest request;
  request.instance = &empty;
  request.algorithm = EngineAlgorithm::Demt;

  AsyncOptions options;
  options.flush_after_ms = 0.0;
  AsyncScheduler async(options);
  const Ticket ticket = async.submit(request);
  ASSERT_TRUE(ticket.accepted());
  EXPECT_EQ(async.wait(ticket), TicketStatus::Failed);
  EXPECT_FALSE(async.error(ticket).empty());
  EXPECT_EQ(async.stats().failed, 1u);
  EngineResult result;
  EXPECT_TRUE(async.take(ticket, result));
  EXPECT_FALSE(result.has_schedule);
}

TEST(AsyncScheduler, TicketFromAnotherSchedulerIsInvalid) {
  const auto instances = make_instances(1, 10, 4, 31);
  const auto requests = make_requests(instances, EngineAlgorithm::FlatList);
  AsyncOptions big;
  big.queue_capacity = 64;
  big.flush_after_ms = 0.0;
  AsyncScheduler issuer(big);
  std::vector<Ticket> tickets;
  for (int i = 0; i < 10; ++i) tickets.push_back(issuer.submit(requests[0]));
  const Ticket foreign = tickets.back();  // slot index up to 9
  ASSERT_TRUE(foreign.accepted());

  AsyncOptions small;
  small.queue_capacity = 2;  // foreign.slot may exceed this table
  AsyncScheduler other(small);
  EXPECT_EQ(other.poll(foreign), TicketStatus::Invalid);
  EXPECT_EQ(other.wait(foreign), TicketStatus::Invalid);
  EngineResult result;
  EXPECT_FALSE(other.take(foreign, result));
  EXPECT_TRUE(other.error(foreign).empty());
  EXPECT_EQ(other.latency_seconds(foreign), 0.0);

  // The harder case: the foreign ticket's slot index also exists in the
  // other scheduler and is occupied. Per-scheduler ticket-id spaces keep
  // it Invalid — take() must not steal the occupying request's result.
  const Ticket own = other.submit(requests[0]);
  ASSERT_TRUE(own.accepted());
  const Ticket colliding = tickets[own.slot];  // same slot, other scheduler
  EXPECT_EQ(other.poll(colliding), TicketStatus::Invalid);
  EXPECT_FALSE(other.take(colliding, result));
  ASSERT_EQ(other.wait(own), TicketStatus::Done);
  EXPECT_TRUE(other.take(own, result));

  issuer.drain();
  for (const Ticket& ticket : tickets) (void)issuer.take(ticket, result);
}

TEST(AsyncScheduler, SubmitWithoutInstanceThrows) {
  AsyncScheduler async;
  EXPECT_THROW((void)async.submit(EngineRequest{}), std::invalid_argument);
}

TEST(AsyncScheduler, RejectsBadOptions) {
  EXPECT_THROW(AsyncScheduler(AsyncOptions{0, 16, 1.0, 64, false}),
               std::invalid_argument);
  EXPECT_THROW(AsyncScheduler(AsyncOptions{1, 0, 1.0, 64, false}),
               std::invalid_argument);
  EXPECT_THROW(AsyncScheduler(AsyncOptions{1, 16, 1.0, 0, false}),
               std::invalid_argument);
}

TEST(AsyncScheduler, ConcurrentSubmittersSeeConsistentResults) {
  const auto instances = make_instances(4, 25, 8, 13);
  const auto requests = make_requests(instances, EngineAlgorithm::FlatList);

  SchedulerEngine sync(EngineOptions{1, false});
  std::vector<EngineResult> reference;
  sync.schedule_batch(requests, reference);

  AsyncOptions options;
  options.shards = 2;
  options.max_batch = 4;
  options.queue_capacity = 256;
  AsyncScheduler async(options);

  constexpr int kPerThread = 25;
  std::vector<std::thread> producers;
  std::vector<std::vector<std::pair<std::size_t, Ticket>>> issued(4);
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t which =
            static_cast<std::size_t>(p + i) % requests.size();
        Ticket ticket = async.submit(requests[which]);
        if (ticket.accepted()) {
          issued[static_cast<std::size_t>(p)].emplace_back(which, ticket);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  async.drain();
  std::size_t done = 0;
  for (const auto& thread_tickets : issued) {
    for (const auto& [which, ticket] : thread_tickets) {
      EngineResult result;
      ASSERT_TRUE(async.take(ticket, result));
      EXPECT_EQ(result.cmax, reference[which].cmax);
      EXPECT_EQ(result.weighted_completion_sum,
                reference[which].weighted_completion_sum);
      ++done;
    }
  }
  EXPECT_EQ(done, async.stats().completed);
  EXPECT_EQ(async.in_flight(), 0u);
}

TEST(AsyncScheduler, StatsCountFlushKinds) {
  const auto instances = make_instances(1, 10, 4, 17);
  const auto requests = make_requests(instances, EngineAlgorithm::FlatList);
  AsyncOptions options;
  options.max_batch = 2;
  options.flush_after_ms = 1e6;  // only size- and forced flushes
  AsyncScheduler async(options);
  const Ticket a = async.submit(requests[0]);
  const Ticket b = async.submit(requests[0]);  // fills the batch
  (void)async.wait(a);
  (void)async.wait(b);
  const AsyncStats stats = async.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_GE(stats.size_flushes, 1u);
  EXPECT_GE(stats.batches, 1u);
  EngineResult result;
  EXPECT_TRUE(async.take(a, result));
  EXPECT_TRUE(async.take(b, result));
}

TEST(AsyncScheduler, ToStringCoversAllStatuses) {
  EXPECT_STREQ(to_string(TicketStatus::Invalid), "invalid");
  EXPECT_STREQ(to_string(TicketStatus::Rejected), "rejected");
  EXPECT_STREQ(to_string(TicketStatus::Pending), "pending");
  EXPECT_STREQ(to_string(TicketStatus::Running), "running");
  EXPECT_STREQ(to_string(TicketStatus::Done), "done");
  EXPECT_STREQ(to_string(TicketStatus::Failed), "failed");
  EXPECT_STREQ(to_string(TicketStatus::Cancelled), "cancelled");
  EXPECT_STREQ(to_string(TicketStatus::TimedOut), "timed_out");
}

TEST(AsyncScheduler, FailedOneShotErrorNamesPolicyAndLane) {
  // A zero-task instance makes demt_schedule throw inside the engine; the
  // surfaced error must name the failing policy.
  const Instance empty(8);
  AsyncOptions options;
  options.shards = 1;
  options.flush_after_ms = 0.0;
  AsyncScheduler scheduler(options);
  EngineRequest request;
  request.instance = &empty;
  request.algorithm = EngineAlgorithm::Demt;
  const Ticket ticket = scheduler.submit(request, 0);
  ASSERT_TRUE(ticket.accepted());
  EXPECT_EQ(scheduler.wait(ticket), TicketStatus::Failed);
  const std::string message = scheduler.error(ticket);
  EXPECT_NE(message.find("policy: demt"), std::string::npos) << message;
  EXPECT_EQ(scheduler.attempts(ticket), 1u);
  EngineResult result;
  EXPECT_TRUE(scheduler.take(ticket, result));
}

TEST(AsyncScheduler, TimedWaitDoesNotConsumeTheTicket) {
  const auto instances = make_instances(1, 20, 16, 7);
  AsyncOptions options;
  options.shards = 1;
  options.flush_after_ms = 5.0;
  AsyncScheduler scheduler(options);
  EngineRequest request;
  request.instance = &instances[0];
  request.algorithm = EngineAlgorithm::FlatList;
  const Ticket ticket = scheduler.submit(request);
  ASSERT_TRUE(ticket.accepted());
  // However the race lands, the ticket stays live/terminal — never consumed.
  const TicketStatus first = scheduler.wait(ticket, 0.001);
  EXPECT_TRUE(first == TicketStatus::TimedOut || first == TicketStatus::Done);
  const TicketStatus final_status = scheduler.wait(ticket, 5000.0);
  EXPECT_EQ(final_status, TicketStatus::Done);
  EngineResult result;
  EXPECT_TRUE(scheduler.take(ticket, result));
  EXPECT_EQ(scheduler.poll(ticket), TicketStatus::Invalid);
}

}  // namespace
}  // namespace moldsched
