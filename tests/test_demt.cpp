#include "core/demt.hpp"

#include <gtest/gtest.h>

#include "lp/minsum_bound.hpp"
#include "sched/validator.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

TEST(Demt, SingleTask) {
  Instance instance(4);
  instance.add_task(MoldableTask({8.0, 5.0, 4.0, 3.5}, 1.0));
  const auto result = demt_schedule(instance);
  require_valid(result.schedule, instance);
  EXPECT_TRUE(result.schedule.complete());
  // One task alone should finish near its fastest time (within the batch
  // structure's slack).
  EXPECT_LE(result.schedule.cmax(), 8.0 + 1e-9);
}

TEST(Demt, EmptyInstanceThrows) {
  Instance instance(4);
  EXPECT_THROW(demt_schedule(instance), std::invalid_argument);
}

class DemtFamilies : public ::testing::TestWithParam<WorkloadFamily> {};

INSTANTIATE_TEST_SUITE_P(
    Families, DemtFamilies,
    ::testing::Values(WorkloadFamily::WeaklyParallel,
                      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed,
                      WorkloadFamily::Cirne),
    [](const auto& info) { return std::string(family_name(info.param)); });

TEST_P(DemtFamilies, ProducesValidCompleteSchedules) {
  Rng rng(2004);
  for (int trial = 0; trial < 3; ++trial) {
    const Instance instance = generate_instance(GetParam(), 40, 16, rng);
    const auto result = demt_schedule(instance);
    EXPECT_TRUE(result.schedule.complete());
    require_valid(result.schedule, instance);
  }
}

TEST_P(DemtFamilies, MakespanWithinModestFactorOfLowerBound) {
  Rng rng(2005);
  const Instance instance = generate_instance(GetParam(), 60, 16, rng);
  const auto result = demt_schedule(instance);
  // The paper observes Cmax ratios around 2 and never much beyond; allow
  // slack for small machines.
  EXPECT_LE(result.schedule.cmax(), 3.5 * result.diag.cmax_lower_bound);
}

TEST_P(DemtFamilies, MinsumAboveLpBound) {
  Rng rng(2006);
  const Instance instance = generate_instance(GetParam(), 30, 8, rng);
  const auto result = demt_schedule(instance);
  const auto bound = minsum_lower_bound(instance);
  EXPECT_GE(result.schedule.weighted_completion_sum(instance),
            bound.bound * (1.0 - 1e-9));
}

TEST(Demt, DiagnosticsAreCoherent) {
  Rng rng(5);
  const Instance instance =
      generate_instance(WorkloadFamily::Mixed, 50, 16, rng);
  const auto result = demt_schedule(instance);
  EXPECT_GT(result.diag.cmax_estimate, 0.0);
  EXPECT_GE(result.diag.cmax_estimate, result.diag.cmax_lower_bound);
  EXPECT_GE(result.diag.grid_k, 0);
  EXPECT_GE(result.diag.num_batches, 1);
}

TEST(Demt, CompactionImprovesOrMatchesNaive) {
  Rng rng(6);
  const Instance instance =
      generate_instance(WorkloadFamily::HighlyParallel, 40, 16, rng);
  DemtOptions naive_options;
  naive_options.compaction = DemtOptions::Compaction::None;
  naive_options.shuffles = 0;
  DemtOptions pull_options;
  pull_options.compaction = DemtOptions::Compaction::PullForward;
  pull_options.shuffles = 0;
  DemtOptions list_options;
  list_options.compaction = DemtOptions::Compaction::List;
  list_options.shuffles = 0;

  const auto naive = demt_schedule(instance, naive_options);
  const auto pulled = demt_schedule(instance, pull_options);
  const auto listed = demt_schedule(instance, list_options);
  require_valid(naive.schedule, instance);
  require_valid(pulled.schedule, instance);
  require_valid(listed.schedule, instance);

  const double wc_naive = naive.schedule.weighted_completion_sum(instance);
  const double wc_pulled = pulled.schedule.weighted_completion_sum(instance);
  // Pull-forward only ever moves completions earlier.
  EXPECT_LE(wc_pulled, wc_naive + 1e-9);
  EXPECT_LE(pulled.schedule.cmax(), naive.schedule.cmax() + 1e-9);
  // The List stage keeps the better of {pulled, listed}: it can never lose
  // on BOTH criteria simultaneously.
  const double wc_listed = listed.schedule.weighted_completion_sum(instance);
  EXPECT_TRUE(wc_listed <= wc_pulled + 1e-9 ||
              listed.schedule.cmax() <= pulled.schedule.cmax() + 1e-9);
}

TEST(Demt, ShufflesNeverWorsenTheKeptSchedule) {
  Rng rng(7);
  const Instance instance =
      generate_instance(WorkloadFamily::Cirne, 50, 16, rng);
  DemtOptions no_shuffle;
  no_shuffle.shuffles = 0;
  DemtOptions with_shuffle;
  with_shuffle.shuffles = 16;

  const auto base = demt_schedule(instance, no_shuffle);
  const auto shuffled = demt_schedule(instance, with_shuffle);
  require_valid(shuffled.schedule, instance);
  // Acceptance rule: minsum must not increase, cmax must stay within the
  // budget (factor 1.0 by default).
  EXPECT_LE(shuffled.schedule.weighted_completion_sum(instance),
            base.schedule.weighted_completion_sum(instance) + 1e-9);
  EXPECT_LE(shuffled.schedule.cmax(), base.schedule.cmax() * 1.0 + 1e-9);
}

TEST(Demt, DeterministicForFixedSeed) {
  Rng rng(8);
  const Instance instance =
      generate_instance(WorkloadFamily::Mixed, 30, 8, rng);
  const auto a = demt_schedule(instance);
  const auto b = demt_schedule(instance);
  EXPECT_DOUBLE_EQ(a.schedule.cmax(), b.schedule.cmax());
  EXPECT_DOUBLE_EQ(a.schedule.weighted_completion_sum(instance),
                   b.schedule.weighted_completion_sum(instance));
}

TEST(Demt, MergeReducesMinsumOnManySmallTasks) {
  // Many tiny sequential tasks + a few wide ones: merging packs the small
  // ones tightly into early batches.
  Instance instance(8);
  for (int i = 0; i < 30; ++i) {
    instance.add_task(MoldableTask(
        std::vector<double>(8, 0.5), 5.0));  // no speedup, tiny, heavy
  }
  for (int i = 0; i < 4; ++i) {
    std::vector<double> times;
    for (int k = 1; k <= 8; ++k) times.push_back(16.0 / k);
    instance.add_task(MoldableTask(std::move(times), 1.0));
  }
  DemtOptions merged, unmerged;
  unmerged.merge_small_tasks = false;
  const auto with_merge = demt_schedule(instance, merged);
  const auto without_merge = demt_schedule(instance, unmerged);
  require_valid(with_merge.schedule, instance);
  require_valid(without_merge.schedule, instance);
  EXPECT_GT(with_merge.diag.merged_stacks, 0);
  EXPECT_LE(with_merge.schedule.weighted_completion_sum(instance),
            1.2 * without_merge.schedule.weighted_completion_sum(instance));
}

TEST(Demt, HandlesRigidTasksMixedIn) {
  Instance instance(8);
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> times;
    for (int k = 1; k <= 8; ++k) times.push_back(6.0 / (0.5 * k + 0.5));
    instance.add_task(MoldableTask(std::move(times), 1.0 + i % 3));
  }
  instance.add_task(MoldableTask({8.0, 5.0, 4.0, 3.5, 3.2, 3.0, 2.9, 2.8},
                                 2.0, /*min_procs=*/4));
  const auto result = demt_schedule(instance);
  require_valid(result.schedule, instance);
  EXPECT_GE(result.schedule.placement(10).nprocs(), 4);
}

TEST(Demt, LocalOrderVariantsAllValid) {
  Rng rng(10);
  const Instance instance =
      generate_instance(WorkloadFamily::Mixed, 40, 16, rng);
  for (auto order : {DemtOptions::LocalOrder::AsSelected,
                     DemtOptions::LocalOrder::SmithRatio,
                     DemtOptions::LocalOrder::LongestFirst}) {
    DemtOptions options;
    options.local_order = order;
    const auto result = demt_schedule(instance, options);
    require_valid(result.schedule, instance);
  }
}

TEST(Demt, CmaxBudgetFactorAllowsTradeoff) {
  Rng rng(11);
  const Instance instance =
      generate_instance(WorkloadFamily::Cirne, 60, 16, rng);
  DemtOptions strict, loose;
  strict.cmax_budget_factor = 1.0;
  loose.cmax_budget_factor = 1.5;
  loose.shuffles = 32;
  const auto s = demt_schedule(instance, strict);
  const auto l = demt_schedule(instance, loose);
  require_valid(l.schedule, instance);
  // The loose run may trade makespan for minsum, but never beyond budget.
  EXPECT_LE(l.schedule.weighted_completion_sum(instance),
            s.schedule.weighted_completion_sum(instance) + 1e-9);
}

}  // namespace
}  // namespace moldsched
