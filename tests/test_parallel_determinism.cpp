/// Determinism contracts of the parallel shuffle engine and the
/// allotment-table precompute: the same seed must give the same schedule
/// for any worker count, and the table-backed dual-approximation search
/// must follow exactly the trajectory of the scan-based one.

#include <gtest/gtest.h>

#include "core/demt.hpp"
#include "dualapprox/cmax_estimator.hpp"
#include "sched/validator.hpp"
#include "tasks/allotment_table.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

void expect_identical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (int t = 0; t < a.num_tasks(); ++t) {
    const Placement& pa = a.placement(t);
    const Placement& pb = b.placement(t);
    EXPECT_EQ(pa.start, pb.start) << "task " << t;
    EXPECT_EQ(pa.duration, pb.duration) << "task " << t;
    EXPECT_EQ(pa.procs, pb.procs) << "task " << t;
  }
}

TEST(ParallelDeterminism, SameSeedSameScheduleAcrossWorkerCounts) {
  Rng rng(20040627);
  for (auto family : {WorkloadFamily::Cirne, WorkloadFamily::Mixed}) {
    const Instance instance = generate_instance(family, 60, 24, rng);

    DemtOptions sequential;
    sequential.shuffles = 16;
    sequential.shuffle_workers = 1;
    const auto base = demt_schedule(instance, sequential);
    require_valid(base.schedule, instance);

    for (int workers : {2, 4, 0}) {  // 0 = every shared-pool worker
      DemtOptions parallel = sequential;
      parallel.shuffle_workers = workers;
      const auto result = demt_schedule(instance, parallel);
      require_valid(result.schedule, instance);
      EXPECT_EQ(result.schedule.cmax(), base.schedule.cmax())
          << "workers=" << workers;
      EXPECT_EQ(result.schedule.weighted_completion_sum(instance),
                base.schedule.weighted_completion_sum(instance))
          << "workers=" << workers;
      EXPECT_EQ(result.diag.shuffle_improvements,
                base.diag.shuffle_improvements)
          << "workers=" << workers;
      expect_identical(result.schedule, base.schedule);
    }
  }
}

TEST(ParallelDeterminism, ShuffleBatchOrderModeIsAlsoDeterministic) {
  Rng rng(7);
  const Instance instance =
      generate_instance(WorkloadFamily::HighlyParallel, 50, 16, rng);
  DemtOptions options;
  options.shuffles = 12;
  options.shuffle_batch_order = true;
  options.cmax_budget_factor = 1.2;
  options.shuffle_workers = 1;
  const auto base = demt_schedule(instance, options);
  options.shuffle_workers = 4;
  const auto parallel = demt_schedule(instance, options);
  expect_identical(parallel.schedule, base.schedule);
}

/// Reference bisection: the exact arithmetic of estimate_cmax, but calling
/// the scan-based dual_test directly. The table-backed search must perform
/// the same number of dual_test calls with the same accept/reject answers.
int reference_search_calls(const Instance& instance, double rel_eps,
                           double* out_estimate) {
  int calls = 0;
  double lb = instance.total_min_work() / instance.procs();
  for (const auto& task : instance.tasks()) {
    lb = std::max(lb, task.min_time());
  }
  ++calls;
  if (dual_test(instance, lb).feasible) {
    *out_estimate = lb;
    return calls;
  }
  double lo = lb;
  double hi = lb * 2.0;
  ++calls;
  bool hi_ok = dual_test(instance, hi).feasible;
  while (!hi_ok) {
    lo = hi;
    hi *= 2.0;
    ++calls;
    hi_ok = dual_test(instance, hi).feasible;
  }
  while (hi - lo > rel_eps * hi) {
    const double mid = 0.5 * (lo + hi);
    ++calls;
    if (dual_test(instance, mid).feasible) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  *out_estimate = hi;
  return calls;
}

TEST(AllotmentTables, SearchTrajectoryUnchangedByPrecompute) {
  Rng rng(42);
  for (auto family :
       {WorkloadFamily::WeaklyParallel, WorkloadFamily::HighlyParallel,
        WorkloadFamily::Cirne, WorkloadFamily::Mixed}) {
    const Instance instance = generate_instance(family, 40, 32, rng);
    const double rel_eps = 1e-4;
    const CmaxEstimate estimate = estimate_cmax(instance, rel_eps);
    double reference_estimate = 0.0;
    const int reference_calls =
        reference_search_calls(instance, rel_eps, &reference_estimate);
    EXPECT_EQ(estimate.dual_tests, reference_calls);
    EXPECT_EQ(estimate.estimate, reference_estimate);
  }
}

TEST(AllotmentTables, MatchTaskQueriesExactly) {
  Rng rng(99);
  const Instance instance =
      generate_instance(WorkloadFamily::Mixed, 30, 48, rng);
  const InstanceAllotments tables(instance);
  for (int t = 0; t < instance.num_tasks(); ++t) {
    const MoldableTask& task = instance.task(t);
    // Probe deadlines around every breakpoint (the exact times, just below,
    // just above) plus extremes.
    std::vector<double> deadlines{0.0, task.min_time() * 0.5, 1e9};
    for (int k = 1; k <= task.max_procs(); ++k) {
      const double p = task.time(k);
      deadlines.push_back(p);
      deadlines.push_back(p * (1.0 - 1e-12));
      deadlines.push_back(p * (1.0 + 1e-12));
    }
    for (double d : deadlines) {
      EXPECT_EQ(tables.table(t).canonical(d), task.canonical_allotment(d))
          << "task " << t << " deadline " << d;
      EXPECT_EQ(tables.table(t).min_work(d), task.min_work_allotment(d))
          << "task " << t << " deadline " << d;
    }
  }
}

TEST(AllotmentTables, TableBackedDualTestMatchesScanBased) {
  Rng rng(123);
  const Instance instance =
      generate_instance(WorkloadFamily::WeaklyParallel, 35, 24, rng);
  const InstanceAllotments tables(instance);
  const double lb = instance.total_min_work() / instance.procs();
  for (double factor : {0.5, 0.9, 1.0, 1.1, 1.5, 2.0, 4.0}) {
    const double lambda = lb * factor;
    const DualTestResult scan = dual_test(instance, lambda);
    const DualTestResult table = dual_test(instance, lambda, tables);
    EXPECT_EQ(scan.feasible, table.feasible) << "lambda " << lambda;
    EXPECT_EQ(scan.total_work, table.total_work) << "lambda " << lambda;
    if (scan.feasible) {
      ASSERT_EQ(scan.assignment.size(), table.assignment.size());
      for (std::size_t i = 0; i < scan.assignment.size(); ++i) {
        EXPECT_EQ(scan.assignment[i].shelf, table.assignment[i].shelf);
        EXPECT_EQ(scan.assignment[i].allotment, table.assignment[i].allotment);
      }
    }
  }
}

}  // namespace
}  // namespace moldsched
