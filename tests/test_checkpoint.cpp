/// Contracts of stream checkpoint/restore (sim/checkpoint.hpp): a session
/// restored from a snapshot taken at ANY watermark boundary replays the
/// rest of the stream bit-identically to the uninterrupted run — for
/// moldable-only tapes and the §5 rigid/divisible mix, under FlatList and
/// DEMT — through both the direct struct hand-off and the byte codec.
/// Also the codec's rejection of malformed images, restore's validation,
/// and the engine-level checkpoint_stream/restore_stream/abandon_stream
/// surface.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "engine/engine.hpp"
#include "sim/checkpoint.hpp"
#include "sim/stream.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

FlatOfflineScheduler flat_offline() {
  return [](const Instance& batch, OnlineWorkspace& ws,
            FlatPlacements& out) { flat_list_schedule(batch, ws.list, out); };
}

FlatOfflineScheduler demt_offline() {
  auto policy = std::make_shared<DemtPolicy>();
  auto ws = std::shared_ptr<PolicyWorkspace>(policy->make_workspace());
  return [policy, ws](const Instance& batch, OnlineWorkspace&,
                      FlatPlacements& out) {
    policy->schedule_into(batch, *ws, out);
  };
}

/// A small §5 mix: moldable, rigid, and divisible arrivals with strictly
/// increasing releases (every chunk boundary is a watermark boundary).
std::vector<StreamArrival> make_mix(int count, int m, bool mixed,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<StreamArrival> arrivals;
  double release = 0.0;
  for (int i = 0; i < count; ++i) {
    release += rng.uniform(0.1, 2.0);
    if (!mixed || i % 3 == 0) {
      Instance tmp = generate_instance(WorkloadFamily::Mixed, 1, m, rng);
      arrivals.push_back(moldable_arrival(tmp.task(0), release));
    } else if (i % 3 == 1) {
      arrivals.push_back(rigid_arrival(1 + i % m, rng.uniform(0.5, 3.0),
                                       rng.uniform(0.5, 2.0), release));
    } else {
      arrivals.push_back(divisible_arrival(rng.uniform(1.0, 6.0),
                                           rng.uniform(0.5, 2.0), release));
    }
  }
  return arrivals;
}

void feed_one(OnlineStream& stream, const std::vector<StreamArrival>& tape,
              std::size_t i, const FlatOfflineScheduler& offline,
              StreamDelivery& out) {
  stream.feed(&tape[i], 1, tape[i].release, offline, out);
}

void expect_delivery_identical(const StreamDelivery& a,
                               const StreamDelivery& b) {
  EXPECT_EQ(a.first_job, b.first_job);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  EXPECT_EQ(a.placements.start, b.placements.start);
  EXPECT_EQ(a.placements.duration, b.placements.duration);
  EXPECT_EQ(a.placements.proc_count, b.placements.proc_count);
  EXPECT_EQ(a.placements.proc_ids, b.placements.proc_ids);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.batch_starts, b.batch_starts);
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  for (std::size_t c = 0; c < a.chunks.size(); ++c) {
    EXPECT_EQ(a.chunks[c].job, b.chunks[c].job);
    EXPECT_EQ(a.chunks[c].proc, b.chunks[c].proc);
    EXPECT_EQ(a.chunks[c].start, b.chunks[c].start);
    EXPECT_EQ(a.chunks[c].duration, b.chunks[c].duration);
  }
  EXPECT_EQ(a.divisible_done, b.divisible_done);
  EXPECT_EQ(a.divisible_completion, b.divisible_completion);
  EXPECT_EQ(a.final_delivery, b.final_delivery);
  EXPECT_EQ(a.cmax, b.cmax);
  EXPECT_EQ(a.weighted_completion_sum, b.weighted_completion_sum);
  EXPECT_EQ(a.weighted_flow_sum, b.weighted_flow_sum);
  EXPECT_EQ(a.divisible_weighted_completion_sum,
            b.divisible_weighted_completion_sum);
  EXPECT_EQ(a.num_batches, b.num_batches);
}

/// Reference: run the whole tape one arrival per feed, collecting every
/// delivery (finish delivery last).
std::vector<StreamDelivery> run_reference(
    const std::vector<StreamArrival>& tape, int m,
    const FlatOfflineScheduler& offline) {
  OnlineStream stream;
  stream.open(m, {});
  std::vector<StreamDelivery> deliveries;
  StreamDelivery out;
  for (std::size_t i = 0; i < tape.size(); ++i) {
    feed_one(stream, tape, i, offline, out);
    deliveries.push_back(out);
  }
  stream.finish(offline, out);
  deliveries.push_back(out);
  return deliveries;
}

/// Feed [0, cut) on one session, snapshot, restore (optionally through the
/// byte codec), feed [cut, n) on the restored session, finish, and demand
/// every post-cut delivery match the reference bit for bit.
void check_cut(const std::vector<StreamArrival>& tape, int m,
               const FlatOfflineScheduler& offline,
               const std::vector<StreamDelivery>& reference, std::size_t cut,
               bool through_bytes) {
  OnlineStream original;
  original.open(m, {});
  StreamDelivery out;
  for (std::size_t i = 0; i < cut; ++i) {
    feed_one(original, tape, i, offline, out);
  }
  StreamCheckpoint ckpt;
  original.checkpoint(ckpt);
  OnlineStream resumed;
  if (through_bytes) {
    std::vector<std::uint8_t> image;
    encode_checkpoint(ckpt, image);
    StreamCheckpoint decoded;
    decode_checkpoint(image.data(), image.size(), decoded);
    resumed.restore(decoded);
  } else {
    resumed.restore(ckpt);
  }
  EXPECT_TRUE(resumed.is_open());
  EXPECT_EQ(resumed.batch_jobs_decided(), original.batch_jobs_decided());
  EXPECT_EQ(resumed.watermark(), original.watermark());
  for (std::size_t i = cut; i < tape.size(); ++i) {
    feed_one(resumed, tape, i, offline, out);
    expect_delivery_identical(out, reference[i]);
  }
  resumed.finish(offline, out);
  expect_delivery_identical(out, reference.back());
  // Running totals converge to the uninterrupted run's.
  EXPECT_EQ(resumed.result().cmax, reference.back().cmax);
  EXPECT_EQ(resumed.result().weighted_completion_sum,
            reference.back().weighted_completion_sum);
  EXPECT_EQ(resumed.result().weighted_flow_sum,
            reference.back().weighted_flow_sum);
}

TEST(StreamCheckpoint, MoldableRoundTripAtEveryWatermarkBoundary) {
  const int m = 8;
  const auto tape = make_mix(14, m, /*mixed=*/false, 20040627);
  const auto offline = flat_offline();
  const auto reference = run_reference(tape, m, offline);
  for (std::size_t cut = 0; cut <= tape.size(); ++cut) {
    SCOPED_TRACE(cut);
    check_cut(tape, m, offline, reference, cut, /*through_bytes=*/false);
  }
}

TEST(StreamCheckpoint, MixedTapeRoundTripsThroughByteCodec) {
  const int m = 6;
  const auto tape = make_mix(15, m, /*mixed=*/true, 77);
  const auto offline = flat_offline();
  const auto reference = run_reference(tape, m, offline);
  for (std::size_t cut = 0; cut <= tape.size(); ++cut) {
    SCOPED_TRACE(cut);
    check_cut(tape, m, offline, reference, cut, /*through_bytes=*/true);
  }
}

TEST(StreamCheckpoint, DemtTapeRoundTrips) {
  const int m = 8;
  const auto tape = make_mix(10, m, /*mixed=*/true, 4242);
  const auto offline = demt_offline();
  const auto reference = run_reference(tape, m, offline);
  for (std::size_t cut : {std::size_t{0}, tape.size() / 2, tape.size()}) {
    SCOPED_TRACE(cut);
    check_cut(tape, m, offline, reference, cut, /*through_bytes=*/true);
  }
}

TEST(StreamCheckpoint, CodecRejectsMalformedImages) {
  OnlineStream stream;
  stream.open(4, {});
  StreamCheckpoint ckpt;
  stream.checkpoint(ckpt);
  std::vector<std::uint8_t> image;
  encode_checkpoint(ckpt, image);
  StreamCheckpoint decoded;
  EXPECT_THROW(decode_checkpoint(nullptr, 0, decoded), std::invalid_argument);
  // Every strict prefix is truncated.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, image.size() - 1}) {
    EXPECT_THROW(decode_checkpoint(image.data(), cut, decoded),
                 std::invalid_argument);
  }
  auto corrupt = image;
  corrupt[0] ^= 0xFF;  // magic
  EXPECT_THROW(decode_checkpoint(corrupt.data(), corrupt.size(), decoded),
               std::invalid_argument);
  corrupt = image;
  corrupt[4] = 0xEE;  // version
  EXPECT_THROW(decode_checkpoint(corrupt.data(), corrupt.size(), decoded),
               std::invalid_argument);
  decode_checkpoint(image.data(), image.size(), decoded);  // intact: fine
  EXPECT_EQ(decoded.m, 4);
}

/// Build a populated checkpoint — reservations, decided jobs, pending
/// divisible load — so every optional field region of the byte image is
/// non-empty and the fuzz tests below exercise all of them.
StreamCheckpoint make_rich_checkpoint() {
  const int m = 6;
  const auto tape = make_mix(12, m, /*mixed=*/true, 77);
  OnlineStream stream;
  stream.open(m, {NodeReservation{2, 0.5, 1.5}});
  StreamDelivery out;
  for (std::size_t i = 0; i + 1 < tape.size(); ++i) {
    feed_one(stream, tape, i, flat_offline(), out);
  }
  StreamCheckpoint ckpt;
  stream.checkpoint(ckpt);
  return ckpt;
}

TEST(StreamCheckpoint, CodecRejectsTruncationAtEveryByte) {
  std::vector<std::uint8_t> image;
  encode_checkpoint(make_rich_checkpoint(), image);
  ASSERT_GT(image.size(), 100u);  // really populated
  StreamCheckpoint decoded;
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    EXPECT_THROW(decode_checkpoint(image.data(), cut, decoded),
                 std::invalid_argument)
        << "cut " << cut;
  }
  decode_checkpoint(image.data(), image.size(), decoded);
  EXPECT_EQ(decoded.m, 6);
}

TEST(StreamCheckpoint, CodecByteFlipFuzzThrowsOrDecodesNeverUB) {
  // Decode-only fuzz (a corrupted image is never restore()d — its values
  // are meaningless): flipping any single byte must either throw
  // std::invalid_argument or complete a decode with altered payload —
  // never crash, read out of bounds, or over-allocate (the count guards
  // bound every resize by the image size). The ASan+UBSan CI lane runs
  // this test, which is the actual gate.
  std::vector<std::uint8_t> image;
  encode_checkpoint(make_rich_checkpoint(), image);
  auto corrupt = image;
  std::size_t threw = 0;
  std::size_t decoded_ok = 0;
  for (std::size_t off = 0; off < image.size(); ++off) {
    corrupt[off] ^= 0xFF;
    StreamCheckpoint decoded;
    try {
      decode_checkpoint(corrupt.data(), corrupt.size(), decoded);
      ++decoded_ok;
    } catch (const std::invalid_argument&) {
      ++threw;
    }
    corrupt[off] = image[off];
  }
  EXPECT_EQ(threw + decoded_ok, image.size());
  // The structural regions (magic, version, counts) must actually reject.
  EXPECT_GT(threw, 0u);
}

TEST(StreamCheckpoint, CodecRejectsOversizedCount) {
  // Overwrite the reservations count (offset 32: magic, version, m, now,
  // watermark, flags precede it) with 2^64-1: the count guard must throw
  // before attempting any allocation.
  std::vector<std::uint8_t> image;
  encode_checkpoint(make_rich_checkpoint(), image);
  ASSERT_GE(image.size(), 40u);
  auto corrupt = image;
  for (std::size_t b = 0; b < 8; ++b) corrupt[32 + b] = 0xFF;
  StreamCheckpoint decoded;
  EXPECT_THROW(decode_checkpoint(corrupt.data(), corrupt.size(), decoded),
               std::invalid_argument);
}

TEST(StreamCheckpoint, CodecRejectsTrailingBytes) {
  std::vector<std::uint8_t> image;
  encode_checkpoint(make_rich_checkpoint(), image);
  StreamCheckpoint decoded;
  decode_checkpoint(image.data(), image.size(), decoded);  // exact: fine
  auto padded = image;
  padded.push_back(0x00);
  EXPECT_THROW(decode_checkpoint(padded.data(), padded.size(), decoded),
               std::invalid_argument);
  padded.insert(padded.end(), 16, 0xAB);
  EXPECT_THROW(decode_checkpoint(padded.data(), padded.size(), decoded),
               std::invalid_argument);
}

TEST(StreamCheckpoint, RestoreValidatesAndCheckpointNeedsOpenSession) {
  OnlineStream closed;
  StreamCheckpoint ckpt;
  EXPECT_THROW(closed.checkpoint(ckpt), std::logic_error);

  OnlineStream stream;
  stream.open(4, {});
  stream.checkpoint(ckpt);
  auto bad = ckpt;
  bad.m = 0;
  EXPECT_THROW(stream.restore(bad), std::invalid_argument);
  bad = ckpt;
  bad.reservations.push_back(NodeReservation{99, 0.0, 1.0});
  EXPECT_THROW(stream.restore(bad), std::invalid_argument);
  bad = ckpt;
  bad.job_release.push_back(0.0);  // SoA shape mismatch
  EXPECT_THROW(stream.restore(bad), std::invalid_argument);
}

TEST(SchedulerEngine, CheckpointRestoreAbandonStreams) {
  const int m = 6;
  const auto tape = make_mix(12, m, /*mixed=*/true, 11);
  const auto reference = run_reference(tape, m, flat_offline());

  SchedulerEngine engine(EngineOptions{1, false});
  StreamConfig config;
  config.m = m;
  config.offline_algorithm = EngineAlgorithm::FlatList;
  EngineStreamId id = engine.open_stream(config);
  StreamDelivery out;
  const std::size_t cut = tape.size() / 2;
  for (std::size_t i = 0; i < cut; ++i) {
    engine.feed_stream(id, &tape[i], 1, tape[i].release, out);
  }
  StreamCheckpoint ckpt;
  engine.checkpoint_stream(id, ckpt);
  engine.abandon_stream(id);
  EXPECT_FALSE(engine.stream_open(id));
  engine.abandon_stream(id);  // unknown/stale id: quiet no-op

  const EngineStreamId restored = engine.restore_stream(config, ckpt);
  EXPECT_TRUE(engine.stream_open(restored));
  EXPECT_EQ(engine.stats().streams_restored, 1u);
  for (std::size_t i = cut; i < tape.size(); ++i) {
    engine.feed_stream(restored, &tape[i], 1, tape[i].release, out);
    expect_delivery_identical(out, reference[i]);
  }
  engine.close_stream(restored, out);
  expect_delivery_identical(out, reference.back());
  EXPECT_FALSE(engine.stream_open(restored));
}

}  // namespace
}  // namespace moldsched
