#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

#include "dualapprox/cmax_estimator.hpp"
#include "sched/validator.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

Instance ideal_tasks(int n, int m, double seq, double weight = 1.0) {
  Instance instance(m);
  for (int i = 0; i < n; ++i) {
    std::vector<double> times;
    for (int k = 1; k <= m; ++k) times.push_back(seq / k);
    instance.add_task(MoldableTask(std::move(times), weight));
  }
  return instance;
}

TEST(Gang, UsesAllProcessorsSequentially) {
  const Instance instance = ideal_tasks(3, 4, 8.0);
  const Schedule schedule = gang_schedule(instance);
  require_valid(schedule, instance);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(schedule.placement(i).nprocs(), 4);
  }
  EXPECT_DOUBLE_EQ(schedule.cmax(), 3 * 2.0);
}

TEST(Gang, OrdersBySmithRatioOnFullMachine) {
  Instance instance(2);
  instance.add_task(MoldableTask({4.0, 2.0}, 1.0));  // ratio 0.5
  instance.add_task(MoldableTask({4.0, 2.0}, 8.0));  // ratio 4.0 -> first
  const Schedule schedule = gang_schedule(instance);
  EXPECT_LT(schedule.placement(1).start, schedule.placement(0).start);
}

TEST(Gang, OptimalForIdealTasksMinsum) {
  // For perfectly parallel equal tasks, gang in any order is minsum-optimal;
  // check the value: tasks of p(m) = 2 => completions 2, 4, 6.
  const Instance instance = ideal_tasks(3, 4, 8.0);
  const Schedule schedule = gang_schedule(instance);
  EXPECT_DOUBLE_EQ(schedule.weighted_completion_sum(instance), 12.0);
}

TEST(Sequential, OneProcessorEach) {
  const Instance instance = ideal_tasks(6, 3, 3.0);
  const Schedule schedule = sequential_lptf_schedule(instance);
  require_valid(schedule, instance);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(schedule.placement(i).nprocs(), 1);
  }
  // 6 unit-seq tasks of length 3 on 3 procs: two rounds -> cmax 6.
  EXPECT_DOUBLE_EQ(schedule.cmax(), 6.0);
}

TEST(Sequential, RejectsRigidMultiprocessorTasks) {
  Instance instance(4);
  instance.add_task(MoldableTask({4.0, 2.0, 1.5, 1.2}, 1.0, /*min_procs=*/2));
  EXPECT_THROW(sequential_lptf_schedule(instance), std::invalid_argument);
}

TEST(Sequential, LptfOrdering) {
  Instance instance(1);
  instance.add_task(MoldableTask({1.0}, 1.0));
  instance.add_task(MoldableTask({5.0}, 1.0));
  instance.add_task(MoldableTask({3.0}, 1.0));
  const Schedule schedule = sequential_lptf_schedule(instance);
  // Longest first on a single machine: 5, 3, 1.
  EXPECT_DOUBLE_EQ(schedule.placement(1).start, 0.0);
  EXPECT_DOUBLE_EQ(schedule.placement(2).start, 5.0);
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 8.0);
}

class ListGrahamOrders : public ::testing::TestWithParam<ListOrder> {};

INSTANTIATE_TEST_SUITE_P(Orders, ListGrahamOrders,
                         ::testing::Values(ListOrder::ShelfOrder,
                                           ListOrder::WeightedLptf,
                                           ListOrder::SmallestAreaFirst),
                         [](const auto& info) {
                           switch (info.param) {
                             case ListOrder::ShelfOrder: return "Shelf";
                             case ListOrder::WeightedLptf: return "Lptf";
                             case ListOrder::SmallestAreaFirst: return "Saf";
                           }
                           return "?";
                         });

TEST_P(ListGrahamOrders, ValidOnAllFamilies) {
  Rng rng(31);
  for (auto family : all_families()) {
    const Instance instance = generate_instance(family, 30, 16, rng);
    const Schedule schedule = list_graham_schedule(instance, GetParam());
    require_valid(schedule, instance);
  }
}

TEST_P(ListGrahamOrders, CmaxNearTheDualBoundOnParallelWork) {
  // The paper notes the [7] allotments give list schedules with Cmax ratio
  // below ~2 for parallel tasks.
  Rng rng(32);
  const Instance instance =
      generate_instance(WorkloadFamily::HighlyParallel, 60, 16, rng);
  const Schedule schedule = list_graham_schedule(instance, GetParam());
  const auto estimate = estimate_cmax(instance);
  EXPECT_LE(schedule.cmax(), 2.5 * estimate.lower_bound);
}

TEST(ListGraham, SafPrefersSmallAreasEarly) {
  Instance instance(4);
  // Big area task and small area task, same weight.
  instance.add_task(MoldableTask({20.0, 11.0, 8.0, 6.0}, 1.0));
  instance.add_task(MoldableTask({1.0, 0.9, 0.8, 0.8}, 1.0));
  const Schedule schedule =
      list_graham_schedule(instance, ListOrder::SmallestAreaFirst);
  EXPECT_LE(schedule.placement(1).start, schedule.placement(0).start);
}

TEST(ListGraham, WeightedLptfPutsLongPerWeightTasksFirst) {
  // p/w descending: the light task (p/w = 6) precedes the heavy one
  // (p/w = 2/3) even though both have the same duration.
  Instance instance(1);
  instance.add_task(MoldableTask({6.0}, 1.0));
  instance.add_task(MoldableTask({6.0}, 9.0));
  const Schedule schedule =
      list_graham_schedule(instance, ListOrder::WeightedLptf);
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 0.0);
  EXPECT_DOUBLE_EQ(schedule.placement(1).start, 6.0);
}

TEST(Baselines, EmptyInstanceThrows) {
  Instance instance(4);
  EXPECT_THROW(gang_schedule(instance), std::invalid_argument);
  EXPECT_THROW(sequential_lptf_schedule(instance), std::invalid_argument);
  EXPECT_THROW(list_graham_schedule(instance, ListOrder::ShelfOrder),
               std::invalid_argument);
}

}  // namespace
}  // namespace moldsched
