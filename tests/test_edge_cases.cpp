/// Edge-case sweep across the whole stack: single-processor clusters,
/// single tasks, tasks narrower than the machine, extreme weights, and
/// degenerate durations — the configurations most likely to break index
/// arithmetic or bound computations.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/demt.hpp"
#include "dualapprox/cmax_estimator.hpp"
#include "exp/algorithms.hpp"
#include "lp/minsum_bound.hpp"
#include "sched/validator.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

TEST(EdgeCases, SingleProcessorCluster) {
  Instance instance(1);
  instance.add_task(MoldableTask({3.0}, 2.0));
  instance.add_task(MoldableTask({1.0}, 5.0));
  instance.add_task(MoldableTask({2.0}, 1.0));

  for (const auto& algorithm : standard_algorithms()) {
    const Schedule schedule = algorithm.run(instance);
    require_valid(schedule, instance);
    // One processor: makespan is exactly the total work.
    EXPECT_NEAR(schedule.cmax(), 6.0, 1e-9) << algorithm.name;
  }

  const auto estimate = estimate_cmax(instance);
  EXPECT_NEAR(estimate.lower_bound, 6.0, 1e-3);
  const auto bound = minsum_lower_bound(instance);
  // Single machine: Smith's rule gives the true optimum 5*1 + 2*4 + 1*6.
  EXPECT_LE(bound.bound, 19.0 + 1e-9);
  EXPECT_GT(bound.bound, 0.0);
}

TEST(EdgeCases, TasksNarrowerThanTheMachine) {
  Instance instance(16);
  instance.add_task(MoldableTask({8.0, 5.0, 4.0}, 1.0));       // width 3
  instance.add_task(MoldableTask({6.0}, 2.0));                 // width 1
  instance.add_task(MoldableTask({9.0, 5.0, 3.5, 3.0}, 1.5));  // width 4

  for (const auto& algorithm : standard_algorithms()) {
    const Schedule schedule = algorithm.run(instance);
    require_valid(schedule, instance);
    for (int i = 0; i < instance.num_tasks(); ++i) {
      EXPECT_LE(schedule.placement(i).nprocs(),
                instance.task(i).max_procs())
          << algorithm.name;
    }
  }
}

TEST(EdgeCases, ExtremeWeightSpread) {
  Instance instance(8);
  Rng rng(1);
  for (int i = 0; i < 12; ++i) {
    std::vector<double> times;
    for (int k = 1; k <= 8; ++k) times.push_back((4.0 + i) / (0.4 * k + 0.6));
    instance.add_task(
        MoldableTask(std::move(times), i == 0 ? 1e6 : 1e-3));
  }
  const auto result = demt_schedule(instance);
  require_valid(result.schedule, instance);
  // The one massive-weight task dominates the criterion; DEMT must finish
  // it early (before the vast majority of the horizon).
  EXPECT_LE(result.schedule.completion(0), 0.8 * result.schedule.cmax());
}

TEST(EdgeCases, ManyIdenticalTasks) {
  Instance instance(8);
  for (int i = 0; i < 64; ++i) {
    instance.add_task(MoldableTask({4.0, 2.0, 1.4, 1.1, 1.0, 0.9, 0.85, 0.8},
                                   1.0));
  }
  for (const auto& algorithm : standard_algorithms()) {
    const Schedule schedule = algorithm.run(instance);
    require_valid(schedule, instance);
  }
}

TEST(EdgeCases, TwoTasksTinyCluster) {
  Instance instance(2);
  instance.add_task(MoldableTask({5.0, 2.6}, 1.0));
  instance.add_task(MoldableTask({0.4, 0.3}, 9.0));
  const auto result = demt_schedule(instance);
  require_valid(result.schedule, instance);
  const auto bound = minsum_lower_bound(instance);
  EXPECT_GE(result.schedule.weighted_completion_sum(instance),
            bound.bound * (1 - 1e-9));
}

TEST(EdgeCases, VeryLongAndVeryShortTasksMix) {
  // Duration spread of 5 orders of magnitude stresses the grid (large K).
  Instance instance(4);
  instance.add_task(MoldableTask({1e-3, 9e-4, 8e-4, 7e-4}, 1.0));
  instance.add_task(MoldableTask({50.0, 26.0, 18.0, 14.0}, 1.0));
  instance.add_task(MoldableTask({0.5, 0.3, 0.25, 0.2}, 3.0));
  const auto result = demt_schedule(instance);
  require_valid(result.schedule, instance);
  EXPECT_GE(result.diag.grid_k, 10);  // log2(1e5)-ish
  const auto bound = minsum_lower_bound(instance);
  EXPECT_GE(result.schedule.weighted_completion_sum(instance),
            bound.bound * (1 - 1e-9));
}

TEST(EdgeCases, AllTasksRigid) {
  Instance instance(8);
  instance.add_task(MoldableTask({9.0, 5.0, 3.5, 3.0, 2.8, 2.7, 2.6, 2.5},
                                 1.0, /*min_procs=*/8));
  instance.add_task(MoldableTask({8.0, 4.5, 3.2, 2.7, 2.5, 2.4, 2.3, 2.2},
                                 2.0, /*min_procs=*/4));
  instance.add_task(MoldableTask({6.0, 3.5, 2.6, 2.2, 2.0, 1.9, 1.85, 1.8},
                                 3.0, /*min_procs=*/2));
  const auto result = demt_schedule(instance);
  require_valid(result.schedule, instance);
  EXPECT_EQ(result.schedule.placement(0).nprocs(), 8);
  EXPECT_GE(result.schedule.placement(1).nprocs(), 4);
}

TEST(EdgeCases, GangHandlesNarrowTasks) {
  Instance instance(16);
  instance.add_task(MoldableTask({8.0, 5.0}, 1.0));  // only 2 procs wide
  const Schedule schedule = gang_schedule(instance);
  require_valid(schedule, instance);
  EXPECT_EQ(schedule.placement(0).nprocs(), 2);
}

TEST(EdgeCases, LowerBoundsOnConstantTimeTasks) {
  // No speedup at all: p(k) = c. Min work = c at one processor.
  Instance instance(4);
  for (int i = 0; i < 8; ++i) {
    instance.add_task(MoldableTask(std::vector<double>(4, 2.0), 1.0));
  }
  const auto estimate = estimate_cmax(instance);
  // 8 unit-work-2 sequential tasks on 4 procs: opt = 4.
  EXPECT_NEAR(estimate.lower_bound, 4.0, 1e-2);
  const auto result = demt_schedule(instance);
  require_valid(result.schedule, instance);
  EXPECT_LE(result.schedule.cmax(), 8.0 + 1e-9);
}

TEST(EdgeCases, InstanceAsLargeAsThePaper) {
  // One full-size paper instance end to end (n=400, m=200).
  Rng rng(55);
  const Instance instance =
      generate_instance(WorkloadFamily::Cirne, 400, 200, rng);
  const auto result = demt_schedule(instance);
  require_valid(result.schedule, instance);
  EXPECT_LE(result.schedule.cmax(), 3.0 * result.diag.cmax_lower_bound);
}

}  // namespace
}  // namespace moldsched
