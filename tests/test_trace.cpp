/// Trace subsystem tests: the SWF parser's tolerance and hard-error
/// contracts plus per-byte truncation/flip fuzz (throw or parse, never
/// UB), the writer round-trip and the bundled mini-trace's provenance
/// (bit-equal to the deterministic synthesizer), the tape compiler's
/// property suite — release monotonicity, stride-k sub-tape determinism,
/// time-scale linearity, quantization idempotence/bounds, moldable
/// calibration — a replay-vs-offline differential on the bundled trace,
/// and the per-lane SLO accumulator's known-value arithmetic.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "sim/online.hpp"
#include "sim/stream.hpp"
#include "tasks/time_grid.hpp"
#include "trace/slo.hpp"
#include "trace/swf.hpp"
#include "trace/swf_write.hpp"
#include "trace/tape.hpp"
#include "util/rng.hpp"
#include "workloads/speedup_models.hpp"

namespace moldsched {
namespace {

constexpr const char* kMiniTracePath =
    MOLDSCHED_SOURCE_DIR "/tests/data/mini_trace.swf";

/// A small deterministic synthetic log for fuzzing and property tests.
SwfTrace synth_trace(int jobs = 30, std::uint64_t seed = 7) {
  SynthSwfOptions options;
  options.jobs = jobs;
  Rng rng(seed);
  SwfTrace trace;
  synthesize_swf(options, rng, trace);
  return trace;
}

std::string to_swf_text(const SwfTrace& trace) {
  std::ostringstream out;
  write_swf(trace, out);
  return out.str();
}

void expect_jobs_equal(const SwfJob& a, const SwfJob& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.submit, b.submit);
  EXPECT_EQ(a.wait, b.wait);
  EXPECT_EQ(a.run_time, b.run_time);
  EXPECT_EQ(a.used_procs, b.used_procs);
  EXPECT_EQ(a.avg_cpu, b.avg_cpu);
  EXPECT_EQ(a.used_mem, b.used_mem);
  EXPECT_EQ(a.req_procs, b.req_procs);
  EXPECT_EQ(a.req_time, b.req_time);
  EXPECT_EQ(a.req_mem, b.req_mem);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.user, b.user);
  EXPECT_EQ(a.group, b.group);
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.queue, b.queue);
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_EQ(a.prev_job, b.prev_job);
  EXPECT_EQ(a.think_time, b.think_time);
}

// ------------------------------------------------------------- parser

TEST(Trace, ParsesWellFormedLog) {
  const char* text =
      "; MaxProcs: 128\n"
      "; MaxQueues: 2\n"
      "1 0 5 100 4 -1 -1 8 200 -1 1 3 2 7 1 0 -1 -1\n"
      "2 60 0 50.5 1 -1 -1 1 60 -1 0 4 2 7 0 0 -1 -1\n";
  SwfTrace trace;
  parse_swf(text, trace);
  ASSERT_EQ(trace.jobs.size(), 2u);
  EXPECT_EQ(trace.max_procs, 128);
  EXPECT_EQ(trace.max_queues, 2);
  EXPECT_EQ(trace.comment_lines, 2);
  EXPECT_EQ(trace.jobs[0].id, 1);
  EXPECT_EQ(trace.jobs[0].submit, 0.0);
  EXPECT_EQ(trace.jobs[0].run_time, 100.0);
  EXPECT_EQ(trace.jobs[0].used_procs, 4);
  EXPECT_EQ(trace.jobs[0].req_procs, 8);
  EXPECT_EQ(trace.jobs[0].status, 1);
  EXPECT_EQ(trace.jobs[0].queue, 1);
  EXPECT_EQ(trace.jobs[1].run_time, 50.5);
  EXPECT_EQ(trace.jobs[1].status, 0);
  EXPECT_EQ(trace.observed_max_procs(), 8);
}

TEST(Trace, ToleratesCommentsBlanksAndShortRecords) {
  const char* text =
      "; free-form comment\n"
      "\n"
      "   \n"
      "1 10 2 30\n"  // only the first 4 fields: the rest defaults to -1
      ";; another\n"
      "2 20 1 40 2\n";
  SwfTrace trace;
  parse_swf(text, trace);
  ASSERT_EQ(trace.jobs.size(), 2u);
  EXPECT_EQ(trace.jobs[0].run_time, 30.0);
  EXPECT_EQ(trace.jobs[0].used_procs, -1);
  EXPECT_EQ(trace.jobs[0].req_procs, -1);
  EXPECT_EQ(trace.jobs[0].status, -1);
  EXPECT_EQ(trace.jobs[1].used_procs, 2);
  EXPECT_EQ(trace.max_procs, -1);  // no header directive
}

TEST(Trace, HardErrorsOnMalformedRecords) {
  SwfTrace trace;
  // Non-numeric token.
  EXPECT_THROW(parse_swf("1 0 abc 30\n", trace), std::invalid_argument);
  // Too few fields.
  EXPECT_THROW(parse_swf("1 0 5\n", trace), std::invalid_argument);
  // Too many fields.
  EXPECT_THROW(
      parse_swf("1 0 5 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 99\n", trace),
      std::invalid_argument);
  // Non-finite values.
  EXPECT_THROW(parse_swf("1 inf 5 30\n", trace), std::invalid_argument);
  EXPECT_THROW(parse_swf("1 nan 5 30\n", trace), std::invalid_argument);
  // Fractional value in an integer field (job id).
  EXPECT_THROW(parse_swf("1.5 0 5 30\n", trace), std::invalid_argument);
  // Trailing garbage glued to a number.
  EXPECT_THROW(parse_swf("1 0 5 30x\n", trace), std::invalid_argument);
}

TEST(Trace, ErrorMessagesCarryTheLineNumber) {
  SwfTrace trace;
  try {
    parse_swf("; ok\n1 0 5 30\nbad line here\n", trace);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
}

TEST(Trace, MalformedHeaderDirectivesAreIgnored) {
  SwfTrace trace;
  parse_swf("; MaxProcs: banana\n; MaxProcs:\n1 0 5 30\n", trace);
  EXPECT_EQ(trace.max_procs, -1);
  ASSERT_EQ(trace.jobs.size(), 1u);
}

TEST(Trace, MissingFinalNewlineStillParses) {
  SwfTrace trace;
  parse_swf("1 0 5 30 2", trace);
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.jobs[0].used_procs, 2);
}

// ------------------------------------------------- writer + provenance

TEST(Trace, WriterRoundTripIsBitExact) {
  const SwfTrace original = synth_trace(40, 99);
  SwfTrace reparsed;
  parse_swf(to_swf_text(original), reparsed);
  ASSERT_EQ(reparsed.jobs.size(), original.jobs.size());
  EXPECT_EQ(reparsed.max_procs, original.max_procs);
  EXPECT_EQ(reparsed.max_queues, original.max_queues);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "job " << i);
    expect_jobs_equal(reparsed.jobs[i], original.jobs[i]);
  }
}

TEST(Trace, BundledMiniTraceMatchesTheSynthesizer) {
  // tests/data/mini_trace.swf is exactly `trace_replay --synth-out` output
  // (200 jobs, seed 20040627); regenerating it must be a no-op.
  SwfTrace bundled;
  load_swf_file(kMiniTracePath, bundled);
  SynthSwfOptions options;
  Rng rng(20040627);
  SwfTrace expected;
  synthesize_swf(options, rng, expected);
  ASSERT_EQ(bundled.jobs.size(), expected.jobs.size());
  EXPECT_EQ(bundled.max_procs, expected.max_procs);
  EXPECT_EQ(bundled.max_queues, expected.max_queues);
  for (std::size_t i = 0; i < expected.jobs.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "job " << i);
    expect_jobs_equal(bundled.jobs[i], expected.jobs[i]);
  }
}

TEST(Trace, LoadRejectsMissingFile) {
  SwfTrace trace;
  EXPECT_THROW(load_swf_file("/nonexistent/path.swf", trace),
               std::runtime_error);
}

// ----------------------------------------------------------- fuzzing

TEST(Trace, TruncationFuzzThrowsOrParsesNeverBreaks) {
  const std::string text = to_swf_text(synth_trace(30, 11));
  SwfTrace trace;
  for (std::size_t len = 0; len <= text.size(); ++len) {
    try {
      parse_swf(text.data(), len, trace);
      // A clean prefix must hold only complete records.
      for (const SwfJob& job : trace.jobs) EXPECT_GE(job.id, 0);
    } catch (const std::invalid_argument&) {
      // Truncation mid-record is a malformed record: expected.
    }
  }
}

TEST(Trace, ByteFlipFuzzThrowsOrParsesNeverBreaks) {
  const std::string original = to_swf_text(synth_trace(30, 12));
  // Every position x a spread of replacement bytes, including control
  // characters, separators, and sign/exponent characters that stress the
  // numeric parser.
  const char replacements[] = {'\0', '\n', ';',  ' ', '-', '+',
                               'e',  '.',  'x',  '9', char(0xFF)};
  SwfTrace trace;
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    for (const char replacement : replacements) {
      std::string mutated = original;
      mutated[pos] = replacement;
      try {
        parse_swf(mutated, trace);
      } catch (const std::invalid_argument&) {
      }
    }
  }
}

// ------------------------------------------------------- tape compiler

TEST(Trace, TapeReleasesAreNonDecreasingFromZero) {
  const SwfTrace trace = synth_trace(60, 21);
  TapeOptions options;
  Tape tape;
  compile_tape(trace, options, tape);
  ASSERT_GT(tape.jobs_kept(), 0);
  EXPECT_EQ(tape.arrivals.front().release, 0.0);
  for (std::size_t i = 1; i < tape.arrivals.size(); ++i) {
    EXPECT_GE(tape.arrivals[i].release, tape.arrivals[i - 1].release);
  }
  EXPECT_EQ(tape.jobs_in_trace,
            static_cast<std::int64_t>(trace.jobs.size()));
  EXPECT_EQ(tape.jobs_kept() + tape.jobs_skipped, tape.jobs_in_trace);
  EXPECT_EQ(tape.info.size(), tape.arrivals.size());
}

TEST(Trace, TapeFiltersFailedAndCancelledRecords) {
  const SwfTrace trace = synth_trace(80, 31);
  TapeOptions options;
  Tape tape;
  compile_tape(trace, options, tape);
  std::int64_t usable = 0;
  for (const SwfJob& job : trace.jobs) {
    const bool status_ok = job.status == 1 || job.status == -1;
    if (status_ok && job.run_time > 0.0 &&
        (job.req_procs >= 1 || job.used_procs >= 1)) {
      ++usable;
    }
  }
  EXPECT_EQ(tape.jobs_kept(), usable);
  EXPECT_GT(tape.jobs_skipped, 0);  // the synthesizer plants failures
}

TEST(Trace, StrideTapeIsAnExactSubTape) {
  const SwfTrace trace = synth_trace(90, 41);
  TapeOptions full_options;
  full_options.quantize_steps = 3;  // grid must not depend on the stride
  Tape full;
  compile_tape(trace, full_options, full);
  for (const int stride : {2, 3, 5}) {
    TapeOptions options = full_options;
    options.stride = stride;
    Tape sampled;
    compile_tape(trace, options, sampled);
    ASSERT_GT(sampled.jobs_kept(), 0) << "stride " << stride;
    for (std::size_t i = 0; i < sampled.arrivals.size(); ++i) {
      const std::size_t j = i * static_cast<std::size_t>(stride);
      ASSERT_LT(j, full.arrivals.size());
      SCOPED_TRACE(testing::Message()
                   << "stride " << stride << " arrival " << i);
      EXPECT_EQ(sampled.arrivals[i].release, full.arrivals[j].release);
      EXPECT_EQ(sampled.info[i].swf_id, full.info[j].swf_id);
      EXPECT_EQ(sampled.info[i].procs, full.info[j].procs);
      EXPECT_EQ(sampled.info[i].min_time, full.info[j].min_time);
      EXPECT_EQ(sampled.info[i].lane, full.info[j].lane);
    }
    EXPECT_EQ(sampled.jobs_kept() + sampled.jobs_sampled_out,
              full.jobs_kept());
  }
}

TEST(Trace, MaxJobsCapsTheTapeDeterministically) {
  const SwfTrace trace = synth_trace(60, 51);
  TapeOptions options;
  Tape full;
  compile_tape(trace, options, full);
  options.max_jobs = 10;
  Tape capped;
  compile_tape(trace, options, capped);
  ASSERT_EQ(capped.jobs_kept(), 10);
  for (std::size_t i = 0; i < capped.arrivals.size(); ++i) {
    EXPECT_EQ(capped.arrivals[i].release, full.arrivals[i].release);
    EXPECT_EQ(capped.info[i].swf_id, full.info[i].swf_id);
  }
}

TEST(Trace, TimeScaleCompressesLinearly) {
  const SwfTrace trace = synth_trace(50, 61);
  TapeOptions options;
  Tape real_time;
  compile_tape(trace, options, real_time);
  options.time_scale = 2.0;  // power of two: exact division
  Tape compressed;
  compile_tape(trace, options, compressed);
  ASSERT_EQ(compressed.jobs_kept(), real_time.jobs_kept());
  for (std::size_t i = 0; i < compressed.arrivals.size(); ++i) {
    EXPECT_EQ(compressed.arrivals[i].release,
              real_time.arrivals[i].release / 2.0);
    EXPECT_EQ(compressed.info[i].min_time,
              real_time.info[i].min_time / 2.0);
  }
  EXPECT_EQ(compressed.span, real_time.span / 2.0);
}

TEST(Trace, QuantizeRuntimeIsIdempotentAndBounded) {
  const TimeGrid grid(1000.0, 1.0);
  Rng rng(71);
  for (const int steps : {1, 2, 4, 8}) {
    const double factor = std::exp2(1.0 / static_cast<double>(steps));
    for (int i = 0; i < 200; ++i) {
      const double runtime = std::exp(rng.uniform(std::log(0.5),
                                                  std::log(2000.0)));
      const double q = quantize_runtime(runtime, grid, steps);
      EXPECT_GE(q, std::min(runtime, grid.t(0)));
      if (runtime > grid.t(0)) {
        EXPECT_LE(q, runtime * factor * (1.0 + 1e-12))
            << "steps " << steps << " runtime " << runtime;
      }
      EXPECT_EQ(quantize_runtime(q, grid, steps), q)
          << "steps " << steps << " runtime " << runtime;
    }
  }
  EXPECT_EQ(quantize_runtime(0.25, grid, 4), grid.t(0));
  EXPECT_THROW(static_cast<void>(quantize_runtime(1.0, grid, 0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(quantize_runtime(0.0, grid, 2)),
               std::invalid_argument);
}

TEST(Trace, QuantizedTapeCollapsesRecurringRuntimes) {
  const SwfTrace trace = synth_trace(120, 81);
  TapeOptions options;
  options.quantize_steps = 2;
  Tape tape;
  compile_tape(trace, options, tape);
  std::vector<double> durations;
  for (const StreamArrival& arrival : tape.arrivals) {
    durations.push_back(arrival.task.time(arrival.task.min_procs()));
  }
  std::sort(durations.begin(), durations.end());
  durations.erase(std::unique(durations.begin(), durations.end()),
                  durations.end());
  // 2 sub-steps per doubling over the log's runtime range leaves far
  // fewer distinct values than jobs.
  EXPECT_LT(static_cast<std::int64_t>(durations.size()),
            tape.jobs_kept() / 2);
}

TEST(Trace, MoldableCompilationReproducesLoggedRuntime) {
  const SwfTrace trace = synth_trace(50, 91);
  TapeOptions options;
  options.moldable = true;
  Tape tape;
  compile_tape(trace, options, tape);
  ASSERT_GT(tape.jobs_kept(), 0);
  for (std::size_t i = 0; i < tape.info.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "row " << i);
    // Locate the source record by its (unique) job id.
    const SwfJob* source = nullptr;
    for (const SwfJob& job : trace.jobs) {
      if (job.id == tape.info[i].swf_id) {
        source = &job;
        break;
      }
    }
    ASSERT_NE(source, nullptr);
    const StreamArrival& arrival = tape.arrivals[i];
    ASSERT_EQ(arrival.kind, ArrivalKind::Moldable);
    const int procs = tape.info[i].procs;
    EXPECT_NEAR(arrival.task.time(procs), source->run_time,
                1e-9 * source->run_time);
    // More processors never slow the task down.
    EXPECT_LE(arrival.task.time(tape.m), arrival.task.time(procs) + 1e-12);
  }
}

TEST(Trace, CompileTapeRejectsBadOptionsAndEmptyTraces) {
  const SwfTrace trace = synth_trace(10, 101);
  Tape tape;
  TapeOptions options;
  options.time_scale = 0.0;
  EXPECT_THROW(compile_tape(trace, options, tape), std::invalid_argument);
  options = TapeOptions{};
  options.stride = 0;
  EXPECT_THROW(compile_tape(trace, options, tape), std::invalid_argument);
  options = TapeOptions{};
  options.lanes = 0;
  EXPECT_THROW(compile_tape(trace, options, tape), std::invalid_argument);
  options = TapeOptions{};
  options.weight = 0.0;
  EXPECT_THROW(compile_tape(trace, options, tape), std::invalid_argument);
  // No usable record: every job failed.
  SwfTrace empty;
  parse_swf("1 0 5 30 2 -1 -1 2 60 -1 0 1 1 1 0 0 -1 -1\n", empty);
  options = TapeOptions{};
  EXPECT_THROW(compile_tape(empty, options, tape), std::invalid_argument);
  // No resolvable machine size: no header, no processor counts.
  SwfTrace no_m;
  parse_swf("1 0 5 30\n", no_m);
  EXPECT_THROW(compile_tape(no_m, options, tape), std::invalid_argument);
}

// ----------------------------------------- replay-vs-offline differential

TEST(Trace, ChunkedReplayMatchesTheOfflineSimulator) {
  SwfTrace trace;
  load_swf_file(kMiniTracePath, trace);
  TapeOptions options;
  options.max_jobs = 48;
  Tape tape;
  compile_tape(trace, options, tape);
  ASSERT_EQ(tape.jobs_kept(), 48);

  std::vector<OnlineJob> jobs;
  for (const StreamArrival& arrival : tape.arrivals) {
    jobs.push_back(OnlineJob{arrival.task, arrival.release});
  }
  const OnlineResult reference = online_batch_schedule_reference(
      tape.m, jobs, [](const Instance& batch) {
        ListPassWorkspace list;
        FlatPlacements out;
        flat_list_schedule(batch, list, out);
        return out.to_schedule(batch.procs());
      });

  const FlatListPolicy policy;
  const auto ws = policy.make_workspace();
  for (const int chunk : {1, 5, 17}) {
    OnlineStream stream;
    stream.open(tape.m, {});
    StreamDelivery delivery;
    std::vector<double> completion;
    std::size_t fed = 0;
    while (fed < tape.arrivals.size()) {
      const auto count = std::min<std::size_t>(
          static_cast<std::size_t>(chunk), tape.arrivals.size() - fed);
      const std::size_t next = fed + count;
      const double watermark = next < tape.arrivals.size()
                                   ? tape.arrivals[next].release
                                   : tape.arrivals.back().release;
      stream.feed(tape.arrivals.data() + fed, count, watermark, policy,
                  *ws, delivery);
      completion.insert(completion.end(), delivery.completion.begin(),
                        delivery.completion.end());
      fed = next;
    }
    stream.finish(policy, *ws, delivery);
    completion.insert(completion.end(), delivery.completion.begin(),
                      delivery.completion.end());
    EXPECT_EQ(completion, reference.completion) << "chunk " << chunk;
    const FlatOnlineResult& result = stream.result();
    EXPECT_EQ(result.cmax, reference.cmax) << "chunk " << chunk;
    EXPECT_EQ(result.batch_starts, reference.batch_starts)
        << "chunk " << chunk;
  }
}

// ------------------------------------------------------------------ SLO

TEST(Slo, SingleLaneKnownValues) {
  SloAccumulator accumulator;
  accumulator.open(1, 4);
  // (release, min_time, completion): latencies 2, 4, 6, 8; stretches
  // 2, 2, 6, 8.
  accumulator.record(0, 0.0, 1.0, 2.0);
  accumulator.record(0, 1.0, 2.0, 5.0);
  accumulator.record(0, 2.0, 1.0, 8.0);
  accumulator.record(0, 0.0, 1.0, 8.0);
  EXPECT_EQ(accumulator.total_recorded(), 4);
  SloReport report;
  accumulator.report(4.0, report);
  ASSERT_EQ(report.lanes.size(), 1u);
  const SloLaneReport& lane = report.lanes[0];
  EXPECT_EQ(lane.jobs, 4);
  // Percentile convention: sorted, index q * (n - 1).
  EXPECT_EQ(lane.latency.p50, 4.0);   // index 1.5 -> 1 -> value 4
  EXPECT_EQ(lane.latency.p90, 6.0);   // index 2.7 -> 2 -> value 6
  EXPECT_EQ(lane.latency.max, 8.0);
  EXPECT_EQ(lane.mean_latency, 5.0);
  EXPECT_EQ(lane.stretch.max, 8.0);
  // Stretches {2, 2, 6, 8} against target 4: 2 of 4 attained.
  EXPECT_EQ(lane.attainment, 0.5);
  EXPECT_EQ(report.attainment, 0.5);
  EXPECT_EQ(report.target_stretch, 4.0);
}

TEST(Slo, AttainmentRuleIsInclusive) {
  SloAccumulator accumulator;
  accumulator.open(1, 1);
  accumulator.record(0, 0.0, 1.0, 3.0);  // stretch exactly 3
  SloReport report;
  accumulator.report(3.0, report);
  EXPECT_EQ(report.attainment, 1.0);
}

TEST(Slo, LanesPartitionJobsAndClampOutOfRange) {
  SloAccumulator accumulator;
  accumulator.open(2, 4);
  accumulator.record(0, 0.0, 1.0, 1.0);
  accumulator.record(1, 0.0, 1.0, 2.0);
  accumulator.record(1, 0.0, 1.0, 3.0);
  accumulator.record(7, 0.0, 1.0, 4.0);   // clamped into lane 1
  accumulator.record(-2, 0.0, 1.0, 5.0);  // clamped into lane 0
  SloReport report;
  accumulator.report(10.0, report);
  ASSERT_EQ(report.lanes.size(), 2u);
  EXPECT_EQ(report.lanes[0].jobs, 2);
  EXPECT_EQ(report.lanes[1].jobs, 3);
  EXPECT_EQ(report.total_jobs, 5);
  // Job-weighted total attainment: all stretches <= 10.
  EXPECT_EQ(report.attainment, 1.0);
}

TEST(Slo, ReopenResetsCounts) {
  SloAccumulator accumulator;
  accumulator.open(2, 2);
  accumulator.record(0, 0.0, 1.0, 100.0);
  accumulator.open(2, 2);
  EXPECT_EQ(accumulator.total_recorded(), 0);
  SloReport report;
  accumulator.report(1.0, report);
  EXPECT_EQ(report.total_jobs, 0);
  EXPECT_EQ(report.lanes[0].jobs, 0);
  EXPECT_EQ(report.lanes[0].attainment, 1.0);  // vacuous lane
}

TEST(Slo, ContractErrors) {
  SloAccumulator accumulator;
  EXPECT_THROW(accumulator.record(0, 0.0, 1.0, 1.0), std::logic_error);
  EXPECT_THROW(accumulator.open(0, 4), std::invalid_argument);
  accumulator.open(1, 1);
  SloReport report;
  EXPECT_THROW(accumulator.report(0.0, report), std::invalid_argument);
}

TEST(Slo, JsonRendersEveryLane) {
  SloAccumulator accumulator;
  accumulator.open(3, 2);
  accumulator.record(0, 0.0, 1.0, 1.0);
  accumulator.record(2, 0.0, 2.0, 3.0);
  SloReport report;
  accumulator.report(5.0, report);
  const std::string json = slo_report_json(report, "  ");
  std::size_t rows = 0;
  for (std::size_t pos = json.find("\"lane\":"); pos != std::string::npos;
       pos = json.find("\"lane\":", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 3u);
  EXPECT_NE(json.find("\"attainment\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace moldsched
