/// Contracts of the streaming online core (sim/stream.hpp) and the
/// engine's stream API: arrivals fed chunk by chunk reproduce the off-line
/// batch simulator bit for bit (including tied releases and reservations),
/// deliveries partition the stream in order, the §5 divisible/rigid mix
/// matches the off-line filler, carryover work drains at finish without
/// colliding with placed tasks, feeds validate before mutating, and the
/// engine pools sessions across open/close cycles. Also the flat divisible
/// fill's workspace-reuse contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "engine/engine.hpp"
#include "sim/divisible.hpp"
#include "sim/online.hpp"
#include "sim/stream.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

std::vector<OnlineJob> make_jobs(WorkloadFamily family, int count, int m,
                                 double max_gap, Rng& rng) {
  std::vector<OnlineJob> jobs;
  double release = 0.0;
  for (int i = 0; i < count; ++i) {
    Instance tmp = generate_instance(family, 1, m, rng);
    jobs.push_back(OnlineJob{tmp.task(0), release});
    release += rng.uniform(0.0, max_gap);
  }
  return jobs;
}

FlatOfflineScheduler flat_offline() {
  return [](const Instance& batch, OnlineWorkspace& ws,
            FlatPlacements& out) { flat_list_schedule(batch, ws.list, out); };
}

OfflineScheduler object_offline() {
  return [](const Instance& batch) {
    ListPassWorkspace list;
    FlatPlacements out;
    flat_list_schedule(batch, list, out);
    return out.to_schedule(batch.procs());
  };
}

/// Feed `jobs` through a fresh stream in chunks of `chunk_size` (0 = all
/// at once), collecting every delivery into `deliveries`.
FlatOnlineResult run_stream(const std::vector<OnlineJob>& jobs, int m,
                            const std::vector<NodeReservation>& reservations,
                            std::size_t chunk_size,
                            std::vector<StreamDelivery>* deliveries = nullptr) {
  OnlineStream stream;
  stream.open(m, reservations);
  const FlatOfflineScheduler offline = flat_offline();
  std::vector<StreamArrival> arrivals;
  StreamDelivery out;
  const std::size_t chunk = chunk_size == 0 ? jobs.size() : chunk_size;
  for (std::size_t i = 0; i < jobs.size(); i += chunk) {
    const std::size_t end = std::min(jobs.size(), i + chunk);
    arrivals.clear();
    for (std::size_t j = i; j < end; ++j) {
      arrivals.push_back(moldable_arrival(jobs[j].task, jobs[j].release));
    }
    const double watermark =
        end < jobs.size() ? jobs[end].release : jobs.back().release;
    stream.feed(arrivals.data(), arrivals.size(), watermark, offline, out);
    if (deliveries != nullptr) deliveries->push_back(out);
  }
  stream.finish(offline, out);
  EXPECT_TRUE(out.final_delivery);
  if (deliveries != nullptr) deliveries->push_back(out);
  EXPECT_TRUE(stream.finished());
  EXPECT_EQ(stream.batch_jobs_decided(), static_cast<int>(jobs.size()));
  return stream.result();
}

void expect_matches_reference(const FlatOnlineResult& flat,
                              const OnlineResult& reference) {
  ASSERT_EQ(flat.schedule.size(), reference.schedule.num_tasks());
  for (int t = 0; t < flat.schedule.size(); ++t) {
    const Placement& p = reference.schedule.placement(t);
    const auto e = static_cast<std::size_t>(t);
    EXPECT_EQ(flat.schedule.start[e], p.start) << "job " << t;
    EXPECT_EQ(flat.schedule.duration[e], p.duration) << "job " << t;
    const auto begin = static_cast<std::size_t>(flat.schedule.proc_begin[e]);
    const std::vector<int> procs(
        flat.schedule.proc_ids.begin() + static_cast<std::ptrdiff_t>(begin),
        flat.schedule.proc_ids.begin() +
            static_cast<std::ptrdiff_t>(
                begin + static_cast<std::size_t>(flat.schedule.proc_count[e])));
    EXPECT_EQ(procs, p.procs) << "job " << t;
  }
  EXPECT_EQ(flat.completion, reference.completion);
  EXPECT_EQ(flat.flow, reference.flow);
  EXPECT_EQ(flat.cmax, reference.cmax);
  EXPECT_EQ(flat.weighted_completion_sum, reference.weighted_completion_sum);
  EXPECT_EQ(flat.weighted_flow_sum, reference.weighted_flow_sum);
  EXPECT_EQ(flat.num_batches, reference.num_batches);
  EXPECT_EQ(flat.batch_starts, reference.batch_starts);
}

TEST(OnlineStream, ChunkedFeedsMatchOfflineReference) {
  Rng rng(20040627);
  for (auto family : {WorkloadFamily::Cirne, WorkloadFamily::Mixed,
                      WorkloadFamily::HighlyParallel}) {
    const auto jobs = make_jobs(family, 18, 8, 1.5, rng);
    const auto reference =
        online_batch_schedule_reference(8, jobs, object_offline());
    for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
      expect_matches_reference(run_stream(jobs, 8, {}, chunk), reference);
    }
  }
}

TEST(OnlineStream, SingleFeedMatchesOfflineReference) {
  Rng rng(5);
  const auto jobs = make_jobs(WorkloadFamily::Mixed, 15, 6, 1.0, rng);
  const auto reference =
      online_batch_schedule_reference(6, jobs, object_offline());
  expect_matches_reference(run_stream(jobs, 6, {}, 0), reference);
}

TEST(OnlineStream, TiedReleasesMatchOfflineReference) {
  Rng rng(9);
  std::vector<OnlineJob> jobs;
  for (int group = 0; group < 4; ++group) {
    for (int i = 0; i < 4; ++i) {
      Instance tmp = generate_instance(WorkloadFamily::Cirne, 1, 8, rng);
      jobs.push_back(OnlineJob{tmp.task(0), group * 1.5});
    }
  }
  const auto reference =
      online_batch_schedule_reference(8, jobs, object_offline());
  for (std::size_t chunk : {std::size_t{1}, std::size_t{5}}) {
    expect_matches_reference(run_stream(jobs, 8, {}, chunk), reference);
  }
}

TEST(OnlineStream, ReservationsMatchOfflineReference) {
  Rng rng(99);
  const auto jobs = make_jobs(WorkloadFamily::Cirne, 14, 8, 1.0, rng);
  const std::vector<NodeReservation> reservations = {
      {0, 2.0, 6.0}, {1, 2.0, 6.0}, {7, 0.0, 3.0}};
  const auto reference = online_batch_schedule_reference(
      8, jobs, object_offline(), reservations);
  expect_matches_reference(run_stream(jobs, 8, reservations, 2), reference);
}

TEST(OnlineStream, DeliveriesPartitionTheStreamInOrder) {
  Rng rng(13);
  const auto jobs = make_jobs(WorkloadFamily::Mixed, 20, 8, 1.2, rng);
  std::vector<StreamDelivery> deliveries;
  const auto result = run_stream(jobs, 8, {}, 3, &deliveries);
  int next_job = 0;
  int batches = 0;
  for (const auto& delivery : deliveries) {
    EXPECT_EQ(delivery.first_job, next_job);
    for (int e = 0; e < delivery.num_jobs(); ++e) {
      const auto job = static_cast<std::size_t>(next_job + e);
      const auto entry = static_cast<std::size_t>(e);
      EXPECT_EQ(delivery.placements.start[entry], result.schedule.start[job]);
      EXPECT_EQ(delivery.completion[entry], result.completion[job]);
    }
    next_job += delivery.num_jobs();
    batches += static_cast<int>(delivery.batch_starts.size());
  }
  EXPECT_EQ(next_job, static_cast<int>(jobs.size()));
  EXPECT_EQ(batches, result.num_batches);
}

TEST(OnlineStream, DivisibleSingleBatchMatchesOfflineFill) {
  // Everything arrives at t=0: one batch, so the stream's in-batch fill
  // must equal the off-line filler run on the batch schedule.
  Rng rng(21);
  const int m = 8;
  std::vector<OnlineJob> jobs = make_jobs(WorkloadFamily::Mixed, 10, m, 0.0, rng);
  for (auto& job : jobs) job.release = 0.0;
  const std::vector<DivisibleJob> filler = {{4.0, 2.0}, {2.5, 1.0}, {6.0, 0.5}};

  const auto offline_result =
      online_batch_schedule(m, jobs, object_offline());
  const auto offline_fill = fill_idle_with_divisible(
      offline_result.schedule, filler, offline_result.cmax);

  OnlineStream stream;
  stream.open(m, {});
  std::vector<StreamArrival> arrivals;
  for (const auto& job : jobs) {
    arrivals.push_back(moldable_arrival(job.task, 0.0));
  }
  for (const auto& job : filler) {
    arrivals.push_back(divisible_arrival(job.work, job.weight, 0.0));
  }
  StreamDelivery out;
  stream.feed(arrivals.data(), arrivals.size(), 0.0, flat_offline(), out);
  StreamDelivery final_out;
  stream.finish(flat_offline(), final_out);

  // The batch decides at finish (watermark 0 cannot close it earlier), so
  // chunks land in the final delivery.
  ASSERT_EQ(final_out.chunks.size(), offline_fill.chunks.size());
  for (std::size_t c = 0; c < final_out.chunks.size(); ++c) {
    EXPECT_EQ(final_out.chunks[c].job, offline_fill.chunks[c].job);
    EXPECT_EQ(final_out.chunks[c].proc, offline_fill.chunks[c].proc);
    EXPECT_EQ(final_out.chunks[c].start, offline_fill.chunks[c].start);
    EXPECT_EQ(final_out.chunks[c].duration, offline_fill.chunks[c].duration);
  }
  ASSERT_EQ(final_out.divisible_done.size(), filler.size());
  for (std::size_t i = 0; i < final_out.divisible_done.size(); ++i) {
    const auto id = static_cast<std::size_t>(final_out.divisible_done[i]);
    EXPECT_EQ(final_out.divisible_completion[i], offline_fill.completion[id]);
  }
}

TEST(OnlineStream, DivisibleCarryoverDrainsWithoutCollisions) {
  Rng rng(31);
  const int m = 6;
  const auto jobs = make_jobs(WorkloadFamily::Cirne, 8, m, 0.8, rng);
  OnlineStream stream;
  stream.open(m, {});
  std::vector<StreamArrival> arrivals;
  for (const auto& job : jobs) {
    arrivals.push_back(moldable_arrival(job.task, job.release));
  }
  // Far more divisible work than the holes of any batch can hold.
  const double big_work = 200.0;
  arrivals.insert(arrivals.begin() + 2,
                  divisible_arrival(big_work, 1.0, arrivals[2].release));
  std::vector<DivisibleChunk> chunks;
  StreamDelivery out;
  stream.feed(arrivals.data(), arrivals.size(), jobs.back().release,
              flat_offline(), out);
  chunks.insert(chunks.end(), out.chunks.begin(), out.chunks.end());
  stream.finish(flat_offline(), out);
  chunks.insert(chunks.end(), out.chunks.begin(), out.chunks.end());

  EXPECT_NEAR(stream.divisible_work_pending(), 0.0, 1e-6);
  double placed = 0.0;
  for (const auto& chunk : chunks) placed += chunk.duration;
  EXPECT_NEAR(placed, big_work, 1e-6);
  ASSERT_EQ(out.divisible_done.size(), 1u);
  EXPECT_GT(out.divisible_completion[0], 0.0);

  // No chunk may overlap a placed batch job on the same processor.
  const FlatOnlineResult& result = stream.result();
  for (const auto& chunk : chunks) {
    for (int t = 0; t < result.schedule.size(); ++t) {
      const auto e = static_cast<std::size_t>(t);
      const auto begin = static_cast<std::size_t>(result.schedule.proc_begin[e]);
      const auto count = static_cast<std::size_t>(result.schedule.proc_count[e]);
      for (std::size_t p = begin; p < begin + count; ++p) {
        if (result.schedule.proc_ids[p] != chunk.proc) continue;
        const double task_start = result.schedule.start[e];
        const double task_finish = task_start + result.schedule.duration[e];
        const bool overlaps = chunk.start < task_finish - 1e-9 &&
                              chunk.finish() > task_start + 1e-9;
        EXPECT_FALSE(overlaps)
            << "chunk [" << chunk.start << ", " << chunk.finish()
            << ") on proc " << chunk.proc << " overlaps job " << t;
      }
    }
  }
}

TEST(OnlineStream, DivisibleOnlyStreamDrainsAtFinish) {
  OnlineStream stream;
  stream.open(4, {});
  const StreamArrival arrival = divisible_arrival(8.0, 1.0, 0.0);
  StreamDelivery out;
  stream.feed(&arrival, 1, 0.0, flat_offline(), out);
  EXPECT_TRUE(out.chunks.empty());  // no batch to pour into yet
  stream.finish(flat_offline(), out);
  EXPECT_TRUE(out.final_delivery);
  ASSERT_EQ(out.divisible_done.size(), 1u);
  // 8 units over 4 free processors from t=0 complete at ~2.
  EXPECT_NEAR(out.divisible_completion[0], 2.0, 1e-6);
  EXPECT_EQ(out.num_batches, 0);
}

TEST(OnlineStream, RigidArrivalKeepsItsAllotment) {
  OnlineStream stream;
  stream.open(8, {});
  const StreamArrival arrival = rigid_arrival(3, 2.0, 1.0, 0.0);
  StreamDelivery out;
  stream.feed(&arrival, 1, 0.0, flat_offline(), out);
  stream.finish(flat_offline(), out);
  ASSERT_EQ(out.num_jobs(), 1);
  EXPECT_EQ(out.placements.proc_count[0], 3);
  EXPECT_EQ(out.placements.duration[0], 2.0);
}

TEST(OnlineStream, FeedValidatesBeforeMutating) {
  Rng rng(44);
  const auto jobs = make_jobs(WorkloadFamily::Mixed, 6, 4, 1.0, rng);
  OnlineStream stream;
  stream.open(4, {});
  const FlatOfflineScheduler offline = flat_offline();
  StreamDelivery out;
  std::vector<StreamArrival> arrivals;
  for (const auto& job : jobs) {
    arrivals.push_back(moldable_arrival(job.task, job.release));
  }
  stream.feed(arrivals.data(), 3, jobs[3].release, offline, out);

  // Watermark regress.
  EXPECT_THROW(stream.feed(arrivals.data() + 3, 1, 0.0, offline, out),
               std::invalid_argument);
  // Arrival released before the previous watermark.
  StreamArrival early = arrivals[0];
  EXPECT_THROW(
      stream.feed(&early, 1, jobs[5].release + 1.0, offline, out),
      std::invalid_argument);
  // Arrival released after the new watermark.
  StreamArrival late = arrivals[4];
  EXPECT_THROW(
      stream.feed(&late, 1, arrivals[4].release - 1e-3, offline, out),
      std::invalid_argument);
  // Out-of-order arrivals inside one feed.
  StreamArrival pair[2] = {arrivals[4], arrivals[3]};
  EXPECT_THROW(
      stream.feed(pair, 2, jobs.back().release, offline, out),
      std::invalid_argument);
  // A job that can never fit the machine.
  StreamArrival wide = rigid_arrival(9, 1.0, 1.0, jobs[4].release);
  EXPECT_THROW(
      stream.feed(&wide, 1, jobs.back().release, offline, out),
      std::invalid_argument);
  EXPECT_FALSE(stream.broken());

  // Every rejection above left the stream usable: finish the run and
  // compare against the reference on the prefix actually fed.
  stream.feed(arrivals.data() + 3, 3, jobs.back().release, offline, out);
  stream.finish(offline, out);
  const std::vector<OnlineJob> fed(jobs.begin(), jobs.end());
  expect_matches_reference(
      stream.result(),
      online_batch_schedule_reference(4, fed, object_offline()));
}

TEST(OnlineStream, DecideTimeErrorBreaksTheStream) {
  // m=2 with one processor reserved across the whole horizon: a job with
  // min_procs=2 passes feed validation (fits the machine) but cannot fit
  // the reduced batch — the decide throws and poisons the stream.
  OnlineStream stream;
  stream.open(2, {{1, 0.0, 1e6}});
  const StreamArrival arrival = rigid_arrival(2, 1.0, 1.0, 0.0);
  StreamDelivery out;
  EXPECT_THROW(stream.feed(&arrival, 1, 1.0, flat_offline(), out),
               std::invalid_argument);
  EXPECT_TRUE(stream.broken());
  const StreamArrival ok = rigid_arrival(1, 1.0, 1.0, 2.0);
  EXPECT_THROW(stream.feed(&ok, 1, 3.0, flat_offline(), out),
               std::logic_error);
  // finish() closes a broken stream quietly with an empty final delivery.
  stream.finish(flat_offline(), out);
  EXPECT_TRUE(out.final_delivery);
  EXPECT_EQ(out.num_jobs(), 0);
}

TEST(OnlineStream, EngineStreamLifecycleAndPooling) {
  Rng rng(77);
  const int m = 8;
  const auto jobs = make_jobs(WorkloadFamily::Cirne, 12, m, 1.0, rng);
  const auto reference =
      online_batch_schedule_reference(m, jobs, object_offline());
  std::vector<StreamArrival> arrivals;
  for (const auto& job : jobs) {
    arrivals.push_back(moldable_arrival(job.task, job.release));
  }

  SchedulerEngine engine(EngineOptions{1, false});
  StreamDelivery out;
  for (int round = 0; round < 3; ++round) {
    StreamConfig config;
    config.m = m;
    config.offline_algorithm = EngineAlgorithm::FlatList;
    const EngineStreamId id = engine.open_stream(config);
    ASSERT_TRUE(engine.stream_open(id));
    std::vector<double> completions;
    engine.feed_stream(id, arrivals.data(), arrivals.size() / 2,
                       jobs[arrivals.size() / 2].release, out);
    completions.insert(completions.end(), out.completion.begin(),
                       out.completion.end());
    engine.feed_stream(id, arrivals.data() + arrivals.size() / 2,
                       arrivals.size() - arrivals.size() / 2,
                       jobs.back().release, out);
    completions.insert(completions.end(), out.completion.begin(),
                       out.completion.end());
    engine.close_stream(id, out);
    completions.insert(completions.end(), out.completion.begin(),
                       out.completion.end());
    EXPECT_TRUE(out.final_delivery);
    EXPECT_FALSE(engine.stream_open(id));
    EXPECT_EQ(completions, reference.completion) << "round " << round;
    // A recycled id must be rejected.
    EXPECT_THROW(engine.feed_stream(id, arrivals.data(), 0,
                                    jobs.back().release, out),
                 std::invalid_argument);
  }
  EXPECT_EQ(engine.stats().streams_opened, 3u);
  EXPECT_EQ(engine.stats().stream_feeds, 6u);
  EXPECT_EQ(engine.stats().stream_arrivals, 3 * jobs.size());
}

TEST(DivisibleFlat, WorkspaceReuseMatchesFreshRuns) {
  Rng rng(8);
  DivisibleFillWorkspace ws;
  DivisibleFillResult pooled;
  for (int round = 0; round < 3; ++round) {
    const Instance instance =
        generate_instance(WorkloadFamily::Mixed, 12 + round * 5, 8, rng);
    const auto demt = demt_schedule(instance);
    std::vector<DivisibleJob> jobs;
    for (int j = 0; j < 3 + round; ++j) {
      jobs.push_back(DivisibleJob{rng.uniform(0.5, 5.0),
                                  rng.uniform(0.5, 2.0)});
    }
    const double horizon = demt.schedule.cmax() * 1.2;
    const auto fresh =
        fill_idle_with_divisible(demt.schedule, jobs, horizon);
    FlatPlacements flat;
    flat.assign_from(demt.schedule);
    fill_idle_with_divisible_into(flat, instance.procs(), jobs.data(),
                                  jobs.size(), horizon, ws, pooled);
    ASSERT_EQ(pooled.chunks.size(), fresh.chunks.size());
    for (std::size_t c = 0; c < fresh.chunks.size(); ++c) {
      EXPECT_EQ(pooled.chunks[c].job, fresh.chunks[c].job);
      EXPECT_EQ(pooled.chunks[c].proc, fresh.chunks[c].proc);
      EXPECT_EQ(pooled.chunks[c].start, fresh.chunks[c].start);
      EXPECT_EQ(pooled.chunks[c].duration, fresh.chunks[c].duration);
    }
    EXPECT_EQ(pooled.completion, fresh.completion);
    EXPECT_EQ(pooled.placed_work, fresh.placed_work);
    EXPECT_EQ(pooled.weighted_completion_sum, fresh.weighted_completion_sum);
    EXPECT_EQ(pooled.all_placed, fresh.all_placed);
    EXPECT_EQ(pooled.idle_capacity, fresh.idle_capacity);
  }
}

}  // namespace
}  // namespace moldsched
