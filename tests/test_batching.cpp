#include "core/batching.hpp"

#include <gtest/gtest.h>

#include <set>

namespace moldsched {
namespace {

Instance mixed_instance() {
  Instance instance(8);
  instance.add_task(MoldableTask({1.0, 0.8, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6}, 5.0));  // 0 small
  instance.add_task(MoldableTask({1.5, 1.0, 0.9, 0.8, 0.8, 0.8, 0.8, 0.8}, 3.0));  // 1 small
  instance.add_task(MoldableTask({9.0, 5.0, 3.5, 3.0, 2.8, 2.6, 2.5, 2.4}, 7.0));  // 2 big
  instance.add_task(MoldableTask({40.0, 22.0, 15.0, 12.0, 10.0, 9.0, 8.5, 8.0}, 2.0));  // 3 huge
  return instance;
}

std::vector<int> all_pending(const Instance& instance) {
  std::vector<int> pending;
  for (int i = 0; i < instance.num_tasks(); ++i) pending.push_back(i);
  return pending;
}

TEST(Batching, FiltersTasksTooLongForBatch) {
  const Instance instance = mixed_instance();
  // Batch of length 4: tasks 0,1 (sequential), 2 (needs >= 3 procs), not 3.
  const auto items = build_batch_items(instance, all_pending(instance), 4.0);
  std::set<int> covered;
  for (const auto& item : items) {
    for (int t : item.tasks) covered.insert(t);
  }
  EXPECT_TRUE(covered.count(0));
  EXPECT_TRUE(covered.count(1));
  EXPECT_TRUE(covered.count(2));
  EXPECT_FALSE(covered.count(3));
}

TEST(Batching, UsesCanonicalAllotment) {
  const Instance instance = mixed_instance();
  const auto items = build_batch_items(instance, {2}, 4.0);
  ASSERT_EQ(items.size(), 1u);
  // Task 2 needs the smallest allotment with time <= 4: p(3) = 3.5.
  EXPECT_EQ(items[0].procs, 3);
  EXPECT_DOUBLE_EQ(items[0].duration, 3.5);
}

TEST(Batching, MergesSmallSequentialTasks) {
  const Instance instance = mixed_instance();
  // Batch length 4: tasks 0 (p1=1.0) and 1 (p1=1.5) both fit in half (2.0)
  // and stack together (1.0 + 1.5 <= 4).
  const auto items = build_batch_items(instance, {0, 1}, 4.0);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_TRUE(items[0].is_stack());
  EXPECT_EQ(items[0].procs, 1);
  EXPECT_DOUBLE_EQ(items[0].weight, 8.0);
  EXPECT_DOUBLE_EQ(items[0].duration, 2.5);
}

TEST(Batching, MergeDisabledKeepsSingles) {
  const Instance instance = mixed_instance();
  BatchBuildOptions options;
  options.merge_small_tasks = false;
  const auto items = build_batch_items(instance, {0, 1}, 4.0, options);
  EXPECT_EQ(items.size(), 2u);
  for (const auto& item : items) EXPECT_FALSE(item.is_stack());
}

TEST(Batching, StackCapacityIsBatchLength) {
  Instance instance(4);
  // Six tasks of p(1) = 1.0 in a batch of length 2.5: capacity 2 each.
  for (int i = 0; i < 6; ++i) {
    instance.add_task(MoldableTask({1.0, 0.9, 0.9, 0.9}, 1.0));
  }
  const auto items = build_batch_items(instance, all_pending(instance), 2.5);
  for (const auto& item : items) {
    EXPECT_LE(item.duration, 2.5 + 1e-12);
    EXPECT_LE(item.tasks.size(), 2u);
  }
  EXPECT_EQ(items.size(), 3u);
}

TEST(Batching, DecreasingWeightMergeOrder) {
  Instance instance(4);
  instance.add_task(MoldableTask({1.0, 0.9, 0.9, 0.9}, 1.0));   // light
  instance.add_task(MoldableTask({1.0, 0.9, 0.9, 0.9}, 10.0));  // heavy
  instance.add_task(MoldableTask({1.0, 0.9, 0.9, 0.9}, 5.0));   // medium
  // Batch length 2: each stack holds exactly two unit tasks; the heaviest
  // two share the first stack.
  BatchBuildOptions options;
  options.smith_order_stacks = false;  // keep paper order inside stacks
  const auto items =
      build_batch_items(instance, all_pending(instance), 2.0, options);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_DOUBLE_EQ(items[0].weight, 15.0);  // tasks 1 and 2
  ASSERT_EQ(items[0].tasks.size(), 2u);
  EXPECT_EQ(items[0].tasks[0], 1);  // heaviest first
  EXPECT_EQ(items[0].tasks[1], 2);
}

TEST(Batching, SmithOrderInsideStacks) {
  Instance instance(2);
  instance.add_task(MoldableTask({2.0, 1.9}, 4.0));  // ratio 2.0
  instance.add_task(MoldableTask({0.5, 0.4}, 3.0));  // ratio 6.0
  const auto items = build_batch_items(instance, {0, 1}, 5.0);
  ASSERT_EQ(items.size(), 1u);
  ASSERT_TRUE(items[0].is_stack());
  // Smith: task 1 (ratio 6) before task 0 (ratio 2) despite lower weight.
  EXPECT_EQ(items[0].tasks[0], 1);
  EXPECT_EQ(items[0].tasks[1], 0);
}

TEST(Batching, RigidTaskNeverMerges) {
  Instance instance(4);
  instance.add_task(MoldableTask({1.0, 0.9, 0.8, 0.7}, 1.0, /*min_procs=*/2));
  const auto items = build_batch_items(instance, {0}, 4.0);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_FALSE(items[0].is_stack());
  EXPECT_GE(items[0].procs, 2);
}

TEST(Batching, EmptyPending) {
  const Instance instance = mixed_instance();
  EXPECT_TRUE(build_batch_items(instance, {}, 4.0).empty());
}

TEST(SelectBatch, RespectsProcessorBudget) {
  std::vector<BatchItem> items;
  for (int i = 0; i < 5; ++i) {
    BatchItem item;
    item.tasks = {i};
    item.procs = 3;
    item.weight = 1.0 + i;
    item.duration = 1.0;
    items.push_back(item);
  }
  const auto selected = select_batch(items, 7);  // at most 2 items fit
  EXPECT_EQ(selected.size(), 2u);
  double weight = 0.0;
  for (int i : selected) weight += items[static_cast<std::size_t>(i)].weight;
  EXPECT_DOUBLE_EQ(weight, 4.0 + 5.0);  // the two heaviest
}

}  // namespace
}  // namespace moldsched
