#include "workloads/generators.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moldsched {
namespace {

class GeneratorsAllFamilies : public ::testing::TestWithParam<WorkloadFamily> {};

INSTANTIATE_TEST_SUITE_P(
    Families, GeneratorsAllFamilies,
    ::testing::Values(WorkloadFamily::WeaklyParallel,
                      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed,
                      WorkloadFamily::Cirne),
    [](const auto& info) { return std::string(family_name(info.param)); });

TEST_P(GeneratorsAllFamilies, ShapeAndBasicInvariants) {
  Rng rng(100);
  const Instance instance = generate_instance(GetParam(), 30, 16, rng);
  EXPECT_EQ(instance.num_tasks(), 30);
  EXPECT_EQ(instance.procs(), 16);
  for (const auto& task : instance.tasks()) {
    EXPECT_EQ(task.max_procs(), 16);
    EXPECT_GE(task.weight(), 1.0);
    EXPECT_LE(task.weight(), 10.0);
    EXPECT_GT(task.time(1), 0.0);
  }
}

TEST_P(GeneratorsAllFamilies, TasksAreMonotone) {
  Rng rng(101);
  const Instance instance = generate_instance(GetParam(), 50, 32, rng);
  EXPECT_TRUE(instance.is_monotone(1e-6));
}

TEST_P(GeneratorsAllFamilies, DeterministicGivenSeed) {
  Rng a(555), b(555);
  const Instance x = generate_instance(GetParam(), 20, 8, a);
  const Instance y = generate_instance(GetParam(), 20, 8, b);
  for (int i = 0; i < x.num_tasks(); ++i) {
    EXPECT_DOUBLE_EQ(x.task(i).weight(), y.task(i).weight());
    for (int k = 1; k <= 8; ++k) {
      EXPECT_DOUBLE_EQ(x.task(i).time(k), y.task(i).time(k));
    }
  }
}

TEST_P(GeneratorsAllFamilies, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  const Instance x = generate_instance(GetParam(), 20, 8, a);
  const Instance y = generate_instance(GetParam(), 20, 8, b);
  bool any_different = false;
  for (int i = 0; i < x.num_tasks() && !any_different; ++i) {
    if (x.task(i).time(1) != y.task(i).time(1)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Generators, UniformSequentialTimesInRange) {
  Rng rng(7);
  const Instance instance =
      generate_instance(WorkloadFamily::HighlyParallel, 200, 4, rng);
  for (const auto& task : instance.tasks()) {
    EXPECT_GE(task.time(1), 1.0);
    EXPECT_LE(task.time(1), 10.0);
  }
}

TEST(Generators, MixedHasSmallAndLargeClasses) {
  Rng rng(8);
  const Instance instance =
      generate_instance(WorkloadFamily::Mixed, 400, 8, rng);
  int small = 0, large = 0;
  for (const auto& task : instance.tasks()) {
    (task.time(1) < 4.0 ? small : large) += 1;
  }
  // 70% small N(1,0.5) vs 30% large N(10,5): the 4.0 split is crude but the
  // small class must clearly dominate.
  EXPECT_GT(small, large);
  EXPECT_GT(large, 400 / 20);  // large class is present
}

TEST(Generators, WeaklyParallelBarelySpeedsUp) {
  Rng rng(9);
  const Instance instance =
      generate_instance(WorkloadFamily::WeaklyParallel, 100, 64, rng);
  double speedup_sum = 0.0;
  for (const auto& task : instance.tasks()) {
    speedup_sum += task.time(1) / task.time(64);
  }
  EXPECT_LT(speedup_sum / 100.0, 4.0);  // weak: far from linear (64x)
}

TEST(Generators, HighlyParallelSpeedsUpALot) {
  Rng rng(10);
  const Instance instance =
      generate_instance(WorkloadFamily::HighlyParallel, 100, 64, rng);
  double speedup_sum = 0.0;
  for (const auto& task : instance.tasks()) {
    speedup_sum += task.time(1) / task.time(64);
  }
  // Speedup ~ 64^X with X ~ N(0.9, 0.2) truncated to [0,1] averages around
  // 15 on 64 processors (the low-X tail drags the mean down).
  EXPECT_GT(speedup_sum / 100.0, 10.0);
}

TEST(Generators, CirneTasksSaturate) {
  Rng rng(11);
  const Instance instance =
      generate_instance(WorkloadFamily::Cirne, 200, 128, rng);
  // Downey curves saturate at A <= m; the time on the full machine must
  // stop improving for at least some tasks well before m.
  int saturated = 0;
  for (const auto& task : instance.tasks()) {
    if (task.time(128) > 0.99 * task.time(64)) ++saturated;
  }
  EXPECT_GT(saturated, 20);
}

TEST(Generators, FamilyNamesRoundTrip) {
  for (const auto family : all_families()) {
    EXPECT_EQ(parse_family(family_name(family)), family);
  }
  EXPECT_THROW(parse_family("bogus"), std::invalid_argument);
}

TEST(Generators, Validation) {
  Rng rng(12);
  EXPECT_THROW(generate_instance(WorkloadFamily::Mixed, 0, 4, rng),
               std::invalid_argument);
  EXPECT_THROW(generate_instance(WorkloadFamily::Mixed, 4, 0, rng),
               std::invalid_argument);
}

TEST(Generators, ConfigOverrides) {
  Rng rng(13);
  GeneratorConfig config;
  config.weight_lo = 5.0;
  config.weight_hi = 5.0;  // degenerate: all weights 5
  config.seq_lo = 2.0;
  config.seq_hi = 3.0;
  const Instance instance =
      generate_instance(WorkloadFamily::HighlyParallel, 50, 4, rng, config);
  for (const auto& task : instance.tasks()) {
    EXPECT_DOUBLE_EQ(task.weight(), 5.0);
    EXPECT_GE(task.time(1), 2.0);
    EXPECT_LE(task.time(1), 3.0);
  }
}

}  // namespace
}  // namespace moldsched
