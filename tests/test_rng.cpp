#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

namespace moldsched {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(2.5, 9.75);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 9.75);
  }
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Rng rng(99);
  double sum = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) sum += rng.uniform(1.0, 10.0);
  EXPECT_NEAR(sum / trials, 5.5, 0.05);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(11);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  // lo >= hi falls back to lo.
  EXPECT_EQ(rng.uniform_int(9, 2), 9);
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 100);
  }
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const double g = rng.gaussian(2.0, 3.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / trials;
  const double var = sq / trials - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, TruncatedGaussianStaysInRange) {
  Rng rng(19);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.truncated_gaussian(0.9, 0.2, 0.0, 1.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, TruncatedGaussianMatchesPaperWeakPreset) {
  // N(0.1, 0.2) truncated to [0,1] has mean around 0.17 (mass below 0 is
  // folded back by rejection).
  Rng rng(23);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    sum += rng.truncated_gaussian(0.1, 0.2, 0.0, 1.0);
  }
  const double mean = sum / trials;
  EXPECT_GT(mean, 0.10);
  EXPECT_LT(mean, 0.25);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministicGivenParentState) {
  Rng p1(77), p2(77);
  Rng c1 = p1.fork(5);
  Rng c2 = p2.fork(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(c1.next_u64(), c2.next_u64());
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(41);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  rng.shuffle(w);
  std::multiset<int> sv(v.begin(), v.end()), sw(w.begin(), w.end());
  EXPECT_EQ(sv, sw);
}

TEST(Rng, ShuffleUniformityOnThreeElements) {
  // All 6 permutations of {0,1,2} should appear with roughly equal
  // frequency.
  Rng rng(43);
  std::map<std::vector<int>, int> counts;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    std::vector<int> v{0, 1, 2};
    rng.shuffle(v);
    ++counts[v];
  }
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_NEAR(count, trials / 6, trials / 30);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(47);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.7)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.7, 0.01);
}

TEST(Xoshiro, KnownRangeAndNonZero) {
  Xoshiro256pp engine(0);  // seed 0 must still produce a non-trivial stream
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) {
    if (engine() != 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace moldsched
