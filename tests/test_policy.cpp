/// The policy-object redesign's regression gate: the deprecated
/// EngineAlgorithm enum adapters must be bit-identical to passing the
/// matching SchedulingPolicy object, across every entry point — engine
/// batch, engine online simulation, engine streams, and the async serving
/// layer for shards {1, 2, 4} — for both built-ins (demt, flatlist). Plus
/// the extension-point proof: LptRigidPolicy (baselines/lpt_policy.hpp)
/// rides through engine, simulator, stream, and serve without any change
/// to those layers.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/lpt_policy.hpp"
#include "core/policy.hpp"
#include "engine/engine.hpp"
#include "sched/validator.hpp"
#include "serve/async_scheduler.hpp"
#include "sim/stream.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

std::vector<Instance> make_instances(int count, int n, int m,
                                     std::uint64_t seed) {
  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  Rng rng(seed);
  std::vector<Instance> instances;
  for (int i = 0; i < count; ++i) {
    instances.push_back(generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng));
  }
  return instances;
}

void expect_identical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (int t = 0; t < a.num_tasks(); ++t) {
    const Placement& pa = a.placement(t);
    const Placement& pb = b.placement(t);
    EXPECT_EQ(pa.start, pb.start) << "task " << t;
    EXPECT_EQ(pa.duration, pb.duration) << "task " << t;
    EXPECT_EQ(pa.procs, pb.procs) << "task " << t;
  }
}

void expect_identical(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.cmax, b.cmax);
  EXPECT_EQ(a.weighted_completion_sum, b.weighted_completion_sum);
  ASSERT_EQ(a.has_schedule, b.has_schedule);
  if (a.has_schedule) expect_identical(a.schedule, b.schedule);
}

void expect_identical(const StreamDelivery& a, const StreamDelivery& b) {
  EXPECT_EQ(a.first_job, b.first_job);
  EXPECT_EQ(a.placements.start, b.placements.start);
  EXPECT_EQ(a.placements.duration, b.placements.duration);
  EXPECT_EQ(a.placements.proc_begin, b.placements.proc_begin);
  EXPECT_EQ(a.placements.proc_count, b.placements.proc_count);
  EXPECT_EQ(a.placements.proc_ids, b.placements.proc_ids);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.batch_starts, b.batch_starts);
  EXPECT_EQ(a.cmax, b.cmax);
  EXPECT_EQ(a.weighted_completion_sum, b.weighted_completion_sum);
  EXPECT_EQ(a.num_batches, b.num_batches);
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  for (std::size_t c = 0; c < a.chunks.size(); ++c) {
    EXPECT_EQ(a.chunks[c].job, b.chunks[c].job);
    EXPECT_EQ(a.chunks[c].proc, b.chunks[c].proc);
    EXPECT_EQ(a.chunks[c].start, b.chunks[c].start);
    EXPECT_EQ(a.chunks[c].duration, b.chunks[c].duration);
  }
  EXPECT_EQ(a.divisible_done, b.divisible_done);
  EXPECT_EQ(a.divisible_completion, b.divisible_completion);
}

std::vector<OnlineJob> make_online_jobs(int count, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<OnlineJob> jobs;
  double release = 0.0;
  for (int j = 0; j < count; ++j) {
    Instance tmp = generate_instance(WorkloadFamily::Cirne, 1, m, rng);
    jobs.push_back(OnlineJob{tmp.task(0), release});
    release += rng.uniform(0.0, 1.0);
  }
  return jobs;
}

TEST(Policy, EnumAdapterBitIdenticalForBatch) {
  const auto instances = make_instances(8, 30, 16, 20040627);
  DemtOptions demt;
  demt.shuffles = 4;
  const DemtPolicy demt_policy(demt);
  const FlatListPolicy flat_policy;

  for (int workers : {1, 0}) {
    SchedulerEngine engine(EngineOptions{workers, true});
    struct Pair {
      EngineAlgorithm algorithm;
      const SchedulingPolicy* policy;
    };
    const DemtOptions& options = demt;
    for (const auto& [algorithm, policy] :
         {Pair{EngineAlgorithm::Demt, &demt_policy},
          Pair{EngineAlgorithm::FlatList, &flat_policy}}) {
      const auto via_enum = engine.schedule_all(instances, algorithm, options);
      const auto via_policy = engine.schedule_all(instances, *policy);
      ASSERT_EQ(via_enum.size(), via_policy.size());
      for (std::size_t i = 0; i < via_enum.size(); ++i) {
        expect_identical(via_policy[i], via_enum[i]);
        EXPECT_EQ(via_policy[i].diag.num_batches,
                  via_enum[i].diag.num_batches);
        EXPECT_EQ(via_policy[i].diag.dual_tests, via_enum[i].diag.dual_tests);
      }
    }
  }
}

TEST(Policy, EnumAdapterBitIdenticalForSimulate) {
  const int m = 8;
  const auto jobs = make_online_jobs(14, m, 17);
  DemtOptions demt;
  demt.shuffles = 2;
  const DemtPolicy demt_policy(demt);
  const FlatListPolicy flat_policy;

  SchedulerEngine engine(EngineOptions{1, true});
  for (const bool flat : {false, true}) {
    OnlineRequest via_enum;
    via_enum.m = m;
    via_enum.jobs = &jobs;
    via_enum.offline_algorithm =
        flat ? EngineAlgorithm::FlatList : EngineAlgorithm::Demt;
    via_enum.demt = demt;
    OnlineRequest via_policy = via_enum;
    via_policy.policy = flat ? static_cast<const SchedulingPolicy*>(&flat_policy)
                             : &demt_policy;
    std::vector<FlatOnlineResult> results;
    engine.simulate_batch({via_enum, via_policy}, results);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[1].cmax, results[0].cmax);
    EXPECT_EQ(results[1].weighted_completion_sum,
              results[0].weighted_completion_sum);
    EXPECT_EQ(results[1].num_batches, results[0].num_batches);
    EXPECT_EQ(results[1].schedule.start, results[0].schedule.start);
    EXPECT_EQ(results[1].schedule.duration, results[0].schedule.duration);
    EXPECT_EQ(results[1].schedule.proc_ids, results[0].schedule.proc_ids);
    EXPECT_EQ(results[1].completion, results[0].completion);
  }
}

TEST(Policy, EnumAdapterBitIdenticalForEngineStreams) {
  const int m = 8;
  Rng rng(23);
  std::vector<StreamArrival> arrivals;
  double release = 0.0;
  for (int j = 0; j < 12; ++j) {
    Instance tmp = generate_instance(WorkloadFamily::Mixed, 1, m, rng);
    arrivals.push_back(moldable_arrival(tmp.task(0), release));
    release += rng.uniform(0.0, 0.8);
    if (j % 4 == 1) {
      arrivals.push_back(divisible_arrival(3.0, 1.0, release));
    }
    if (j % 4 == 3) {
      arrivals.push_back(rigid_arrival(2, 1.5, 1.0, release));
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const StreamArrival& a, const StreamArrival& b) {
              return a.release < b.release;
            });

  DemtOptions demt;
  demt.shuffles = 2;
  const DemtPolicy demt_policy(demt);
  const FlatListPolicy flat_policy;
  SchedulerEngine engine(EngineOptions{1, true});

  for (const bool flat : {true, false}) {
    StreamConfig via_enum;
    via_enum.m = m;
    via_enum.offline_algorithm =
        flat ? EngineAlgorithm::FlatList : EngineAlgorithm::Demt;
    via_enum.demt = demt;
    StreamConfig via_policy = via_enum;
    via_policy.policy = flat ? static_cast<const SchedulingPolicy*>(&flat_policy)
                             : &demt_policy;

    const EngineStreamId a = engine.open_stream(via_enum);
    const EngineStreamId b = engine.open_stream(via_policy);
    StreamDelivery da;
    StreamDelivery db;
    std::size_t fed = 0;
    double watermark = 0.0;
    while (fed < arrivals.size()) {
      const std::size_t chunk = std::min<std::size_t>(3, arrivals.size() - fed);
      watermark = arrivals[fed + chunk - 1].release;
      engine.feed_stream(a, arrivals.data() + fed, chunk, watermark, da);
      engine.feed_stream(b, arrivals.data() + fed, chunk, watermark, db);
      expect_identical(db, da);
      fed += chunk;
    }
    engine.close_stream(a, da);
    engine.close_stream(b, db);
    expect_identical(db, da);
  }
}

TEST(Policy, ServePolicyPathBitIdenticalForShardCounts) {
  const auto instances = make_instances(12, 30, 16, 7);
  DemtOptions demt;
  demt.shuffles = 4;
  const DemtPolicy demt_policy(demt);
  const FlatListPolicy flat_policy;

  for (const bool flat : {false, true}) {
    // Reference: the synchronous engine on the deprecated enum spelling.
    std::vector<EngineRequest> enum_requests(instances.size());
    std::vector<EngineRequest> policy_requests(instances.size());
    for (std::size_t i = 0; i < instances.size(); ++i) {
      enum_requests[i].instance = &instances[i];
      enum_requests[i].algorithm =
          flat ? EngineAlgorithm::FlatList : EngineAlgorithm::Demt;
      enum_requests[i].demt = demt;
      policy_requests[i].instance = &instances[i];
      policy_requests[i].policy =
          flat ? static_cast<const SchedulingPolicy*>(&flat_policy)
               : &demt_policy;
    }
    SchedulerEngine sync(EngineOptions{1, true});
    std::vector<EngineResult> reference;
    sync.schedule_batch(enum_requests, reference);

    for (int shards : {1, 2, 4}) {
      AsyncOptions options;
      options.shards = shards;
      options.max_batch = 3;
      options.queue_capacity = 64;
      options.keep_schedules = true;
      AsyncScheduler async(options);
      std::vector<Ticket> tickets;
      for (const auto& request : policy_requests) {
        tickets.push_back(async.submit(request));
        ASSERT_TRUE(tickets.back().accepted());
      }
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        EXPECT_EQ(async.wait(tickets[i]), TicketStatus::Done)
            << "shards=" << shards;
        EngineResult result;
        ASSERT_TRUE(async.take(tickets[i], result));
        expect_identical(result, reference[i]);
      }
    }
  }
}

TEST(Policy, ServeStreamPolicyPathBitIdenticalForShardCounts) {
  const int m = 8;
  Rng rng(29);
  std::vector<StreamArrival> arrivals;
  double release = 0.0;
  for (int j = 0; j < 10; ++j) {
    Instance tmp = generate_instance(WorkloadFamily::Cirne, 1, m, rng);
    arrivals.push_back(moldable_arrival(tmp.task(0), release));
    release += rng.uniform(0.0, 0.6);
  }
  const FlatListPolicy flat_policy;

  // Reference: the engine's enum-adapter stream.
  SchedulerEngine engine(EngineOptions{1, true});
  StreamConfig config;
  config.m = m;
  config.offline_algorithm = EngineAlgorithm::FlatList;
  const EngineStreamId reference_id = engine.open_stream(config);
  std::vector<StreamDelivery> reference;
  StreamDelivery scratch;
  for (std::size_t j = 0; j < arrivals.size(); ++j) {
    engine.feed_stream(reference_id, &arrivals[j], 1, arrivals[j].release,
                       scratch);
    reference.push_back(scratch);
  }
  engine.close_stream(reference_id, scratch);
  reference.push_back(scratch);

  for (int shards : {1, 2, 4}) {
    AsyncOptions options;
    options.shards = shards;
    options.queue_capacity = 64;
    AsyncScheduler async(options);
    StreamOptions stream_options;
    stream_options.m = m;
    stream_options.policy = &flat_policy;
    const StreamTicket stream = async.open_stream(stream_options);
    ASSERT_TRUE(stream.accepted());
    std::vector<Ticket> tickets;
    for (std::size_t j = 0; j < arrivals.size(); ++j) {
      tickets.push_back(async.submit_stream(stream, &arrivals[j], 1,
                                            arrivals[j].release));
      ASSERT_TRUE(tickets.back().accepted());
    }
    tickets.push_back(async.close_stream(stream));
    ASSERT_TRUE(tickets.back().accepted());
    StreamDelivery delivery;
    for (std::size_t j = 0; j < tickets.size(); ++j) {
      EXPECT_EQ(async.wait(tickets[j]), TicketStatus::Done)
          << "shards=" << shards << " feed " << j;
      ASSERT_TRUE(async.take_stream(tickets[j], delivery));
      expect_identical(delivery, reference[j]);
    }
  }
}

TEST(Policy, LptRigidPolicyPlugsInWithoutEngineChanges) {
  const auto instances = make_instances(6, 35, 16, 11);
  const LptRigidPolicy lpt;

  // Direct call = the policy's ground truth.
  auto workspace = lpt.make_workspace();
  FlatPlacements direct;
  EXPECT_STREQ(lpt.name(), "lpt_rigid");

  // Engine batch path.
  SchedulerEngine engine(EngineOptions{1, true});
  const auto results = engine.schedule_all(instances, lpt);
  ASSERT_EQ(results.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    require_valid(results[i].schedule, instances[i]);
    lpt.schedule_into(instances[i], *workspace, direct);
    EXPECT_EQ(results[i].cmax, direct.cmax());
    EXPECT_EQ(results[i].weighted_completion_sum,
              direct.weighted_completion_sum(instances[i]));
  }

  // Engine online-simulation path.
  const int m = 8;
  const auto jobs = make_online_jobs(10, m, 13);
  OnlineRequest request;
  request.m = m;
  request.jobs = &jobs;
  request.policy = &lpt;
  std::vector<FlatOnlineResult> online;
  engine.simulate_batch({request}, online);
  ASSERT_EQ(online.size(), 1u);
  EXPECT_GT(online[0].cmax, 0.0);
  EXPECT_EQ(online[0].num_batches > 0, true);

  // Serving path, metrics only.
  AsyncOptions options;
  options.shards = 2;
  AsyncScheduler async(options);
  EngineRequest serve_request;
  serve_request.instance = &instances[0];
  serve_request.policy = &lpt;
  const Ticket ticket = async.submit(serve_request);
  ASSERT_TRUE(ticket.accepted());
  EXPECT_EQ(async.wait(ticket), TicketStatus::Done);
  EngineResult served;
  ASSERT_TRUE(async.take(ticket, served));
  lpt.schedule_into(instances[0], *workspace, direct);
  EXPECT_EQ(served.cmax, direct.cmax());

  // Streaming path.
  StreamConfig config;
  config.m = m;
  config.policy = &lpt;
  const EngineStreamId stream = engine.open_stream(config);
  StreamDelivery delivery;
  Rng rng(31);
  double release = 0.0;
  for (int j = 0; j < 6; ++j) {
    Instance tmp = generate_instance(WorkloadFamily::Mixed, 1, m, rng);
    const StreamArrival arrival = moldable_arrival(tmp.task(0), release);
    engine.feed_stream(stream, &arrival, 1, release, delivery);
    release += 0.5;
  }
  engine.close_stream(stream, delivery);
  EXPECT_TRUE(delivery.final_delivery);
  EXPECT_EQ(engine.stats().streams_opened, 1u);
}

TEST(Policy, StreamPolicyOverloadMatchesPluginForm) {
  const int m = 6;
  Rng rng(37);
  std::vector<StreamArrival> arrivals;
  double release = 0.0;
  for (int j = 0; j < 8; ++j) {
    Instance tmp = generate_instance(WorkloadFamily::WeaklyParallel, 1, m, rng);
    arrivals.push_back(moldable_arrival(tmp.task(0), release));
    release += 0.4;
  }
  const FlatListPolicy policy;
  auto policy_ws = policy.make_workspace();

  OnlineStream via_policy;
  OnlineStream via_plugin;
  via_policy.open(m, {});
  via_plugin.open(m, {});
  const FlatOfflineScheduler plugin = policy_offline(policy, *policy_ws);
  StreamDelivery da;
  StreamDelivery db;
  for (const auto& arrival : arrivals) {
    via_policy.feed(&arrival, 1, arrival.release, policy, *policy_ws, da);
    via_plugin.feed(&arrival, 1, arrival.release, plugin, db);
    expect_identical(da, db);
  }
  via_policy.finish(policy, *policy_ws, da);
  via_plugin.finish(plugin, db);
  expect_identical(da, db);
}

TEST(Policy, WorkspacePoolSharesPerClassKeys) {
  // Two DemtPolicy instances share one pooled workspace (per-class key);
  // a policy without an override gets a per-instance key.
  const DemtPolicy a{DemtOptions{}};
  DemtOptions other;
  other.shuffles = 2;
  const DemtPolicy b(other);
  EXPECT_EQ(a.workspace_key(), b.workspace_key());
  const FlatListPolicy flat;
  EXPECT_NE(a.workspace_key(), flat.workspace_key());

  class CustomPolicy final : public SchedulingPolicy {
   public:
    [[nodiscard]] const char* name() const noexcept override {
      return "custom";
    }
    [[nodiscard]] std::unique_ptr<PolicyWorkspace> make_workspace()
        const override {
      return std::make_unique<PolicyWorkspace>();
    }
    void schedule_into(const Instance& batch, PolicyWorkspace& ws,
                       FlatPlacements& out) const override {
      FlatListPolicy fallback;
      auto scratch = fallback.make_workspace();
      fallback.schedule_into(batch, *scratch, out);
      (void)ws;
    }
  };
  const CustomPolicy c1;
  const CustomPolicy c2;
  EXPECT_EQ(c1.workspace_key(), &c1);
  EXPECT_NE(c1.workspace_key(), c2.workspace_key());
}

}  // namespace
}  // namespace moldsched
