/// Contracts of the pluggable admission layer (serve/admission.hpp):
/// lane classification and explicit-lane submit, per-lane queue_capacity
/// rejection and recovery, weighted-fair service across backlogged lanes,
/// lane-tagged stream feeds with preserved per-stream order, per-lane
/// stats, and policy/option validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "engine/engine.hpp"
#include "serve/admission.hpp"
#include "serve/async_scheduler.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

std::vector<Instance> make_instances(int count, int n, int m,
                                     std::uint64_t seed) {
  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  Rng rng(seed);
  std::vector<Instance> instances;
  for (int i = 0; i < count; ++i) {
    instances.push_back(generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng));
  }
  return instances;
}

std::vector<LaneSpec> two_lanes(int high_weight, int low_weight,
                                int high_cap = 0, int low_cap = 0) {
  LaneSpec high;
  high.name = "high";
  high.weight = high_weight;
  high.queue_capacity = high_cap;
  LaneSpec low;
  low.name = "low";
  low.weight = low_weight;
  low.queue_capacity = low_cap;
  return {high, low};
}

TEST(Admission, DefaultIsSingleFifoLane) {
  AsyncScheduler async;
  EXPECT_EQ(async.num_lanes(), 1);
  EXPECT_EQ(async.lane_spec(0).name, "default");
  EXPECT_EQ(async.lane_spec(0).weight, 1);
  EXPECT_EQ(async.lane_spec(0).queue_capacity, 0);
  EXPECT_THROW((void)async.lane_spec(1), std::out_of_range);
  const auto stats = async.stats();
  ASSERT_EQ(stats.lanes.size(), 1u);
  EXPECT_EQ(stats.lanes[0].name, "default");
}

TEST(Admission, ExplicitLaneTagsTicketsAndStats) {
  const auto instances = make_instances(1, 15, 8, 3);
  EngineRequest request;
  request.instance = &instances[0];
  request.algorithm = EngineAlgorithm::FlatList;

  const WeightedLanesAdmission admission(two_lanes(3, 1));
  AsyncOptions options;
  options.flush_after_ms = 0.0;
  options.admission = &admission;
  AsyncScheduler async(options);
  ASSERT_EQ(async.num_lanes(), 2);
  EXPECT_EQ(async.lane_spec(1).name, "low");

  const Ticket high = async.submit(request, 0);
  const Ticket low = async.submit(request, 1);
  const Ticket classified = async.submit(request);  // default_lane == 0
  const Ticket clamped = async.submit(request, 99);  // clamps to last lane
  EXPECT_EQ(high.lane, 0u);
  EXPECT_EQ(low.lane, 1u);
  EXPECT_EQ(classified.lane, 0u);
  EXPECT_EQ(clamped.lane, 1u);
  async.drain();
  EngineResult result;
  for (const Ticket& t : {high, low, classified, clamped}) {
    EXPECT_EQ(async.poll(t), TicketStatus::Done);
    EXPECT_TRUE(async.take(t, result));
  }
  const AsyncStats stats = async.stats();
  ASSERT_EQ(stats.lanes.size(), 2u);
  EXPECT_EQ(stats.lanes[0].submitted, 2u);
  EXPECT_EQ(stats.lanes[1].submitted, 2u);
  EXPECT_EQ(stats.lanes[0].completed, 2u);
  EXPECT_EQ(stats.lanes[1].completed, 2u);
  EXPECT_EQ(stats.lanes[0].in_flight, 0u);
  EXPECT_EQ(stats.lanes[1].in_flight, 0u);
}

TEST(Admission, PerLaneCapacityRejectsAndRecovers) {
  const auto instances = make_instances(1, 15, 8, 5);
  EngineRequest request;
  request.instance = &instances[0];
  request.algorithm = EngineAlgorithm::FlatList;

  const WeightedLanesAdmission admission(two_lanes(1, 1, /*high_cap=*/0,
                                                   /*low_cap=*/2));
  AsyncOptions options;
  options.max_batch = 64;
  options.flush_after_ms = 1e6;  // hold everything: pure admission test
  options.queue_capacity = 64;
  options.admission = &admission;
  AsyncScheduler async(options);

  const Ticket a = async.submit(request, 1);
  const Ticket b = async.submit(request, 1);
  ASSERT_TRUE(a.accepted());
  ASSERT_TRUE(b.accepted());
  // The low lane's own bound (2 in flight) rejects; the global table and
  // the unbounded high lane still accept.
  const Ticket rejected = async.submit(request, 1);
  EXPECT_FALSE(rejected.accepted());
  EXPECT_EQ(rejected.lane, 1u);
  EXPECT_EQ(async.poll(rejected), TicketStatus::Rejected);
  const Ticket high = async.submit(request, 0);
  EXPECT_TRUE(high.accepted());

  AsyncStats stats = async.stats();
  EXPECT_EQ(stats.lanes[1].rejected, 1u);
  EXPECT_EQ(stats.lanes[1].in_flight, 2u);
  EXPECT_EQ(stats.lanes[0].rejected, 0u);

  // Capacity frees on take(), per lane.
  async.drain();
  EngineResult result;
  ASSERT_TRUE(async.take(a, result));
  const Ticket again = async.submit(request, 1);
  EXPECT_TRUE(again.accepted());
  ASSERT_TRUE(async.take(b, result));
  EXPECT_EQ(async.wait(again), TicketStatus::Done);
  ASSERT_TRUE(async.take(again, result));
  ASSERT_TRUE(async.take(high, result));
  EXPECT_EQ(async.in_flight(), 0u);
}

TEST(Admission, WeightedFairServiceFavoursTheHeavyLane) {
  // One shard, batches of 4, lanes weighted 3:1. A slow DEMT request
  // occupies the strand while both lanes back-fill, so when the strand
  // re-pops, every later batch takes ~3 high for every 1 low — the last
  // high-lane request must finish before the last low-lane one.
  const auto instances = make_instances(1, 60, 24, 7);
  EngineRequest slow;
  slow.instance = &instances[0];
  slow.algorithm = EngineAlgorithm::Demt;
  slow.demt.shuffles = 64;  // keep the strand busy while queues load
  EngineRequest fast = slow;
  fast.algorithm = EngineAlgorithm::FlatList;

  const WeightedLanesAdmission admission(two_lanes(3, 1));
  AsyncOptions options;
  options.shards = 1;
  options.max_batch = 4;
  options.flush_after_ms = 1e6;
  options.queue_capacity = 256;
  options.admission = &admission;
  AsyncScheduler async(options);

  const Ticket head = async.submit(slow, 1);
  ASSERT_TRUE(head.accepted());
  async.flush();  // strand starts the slow head request

  std::vector<Ticket> low;
  std::vector<Ticket> high;
  for (int i = 0; i < 12; ++i) {
    low.push_back(async.submit(fast, 1));
    ASSERT_TRUE(low.back().accepted());
  }
  for (int i = 0; i < 12; ++i) {
    high.push_back(async.submit(fast, 0));
    ASSERT_TRUE(high.back().accepted());
  }
  async.drain();

  const auto last_done_ms = [&](const std::vector<Ticket>& tickets) {
    double last = 0.0;
    for (const Ticket& t : tickets) {
      EXPECT_EQ(async.poll(t), TicketStatus::Done);
      last = std::max(last, async.latency_seconds(t));
    }
    return last;
  };
  // Submit instants are microseconds apart while the done instants are
  // whole batches apart, so latency order is completion order.
  EXPECT_LT(last_done_ms(high), last_done_ms(low));

  EngineResult result;
  (void)async.take(head, result);
  for (const Ticket& t : low) (void)async.take(t, result);
  for (const Ticket& t : high) (void)async.take(t, result);
}

TEST(Admission, StreamsRideTheirLaneAndStayOrdered) {
  const int m = 8;
  Rng rng(41);
  std::vector<StreamArrival> arrivals;
  double release = 0.0;
  for (int j = 0; j < 8; ++j) {
    Instance tmp = generate_instance(WorkloadFamily::Cirne, 1, m, rng);
    arrivals.push_back(moldable_arrival(tmp.task(0), release));
    release += 0.5;
  }

  const WeightedLanesAdmission admission(two_lanes(3, 1));
  AsyncOptions options;
  options.shards = 2;
  options.admission = &admission;
  AsyncScheduler async(options);

  StreamOptions stream_options;
  stream_options.m = m;
  const StreamTicket stream = async.open_stream(stream_options, 1);
  ASSERT_TRUE(stream.accepted());
  EXPECT_EQ(stream.lane, 1u);

  std::vector<Ticket> feeds;
  for (std::size_t j = 0; j < arrivals.size(); ++j) {
    feeds.push_back(
        async.submit_stream(stream, &arrivals[j], 1, arrivals[j].release));
    ASSERT_TRUE(feeds.back().accepted());
    EXPECT_EQ(feeds.back().lane, 1u);  // feeds inherit the stream's lane
  }
  feeds.push_back(async.close_stream(stream));
  ASSERT_TRUE(feeds.back().accepted());
  EXPECT_EQ(feeds.back().lane, 1u);

  // Ordered, contiguous delivery: feed j delivers exactly job j.
  StreamDelivery delivery;
  int next_job = 0;
  for (std::size_t j = 0; j < feeds.size(); ++j) {
    EXPECT_EQ(async.wait(feeds[j]), TicketStatus::Done);
    ASSERT_TRUE(async.take_stream(feeds[j], delivery));
    EXPECT_EQ(delivery.first_job, next_job);
    next_job += delivery.num_jobs();
  }
  EXPECT_EQ(next_job, static_cast<int>(arrivals.size()));
  const AsyncStats stats = async.stats();
  EXPECT_EQ(stats.lanes[1].submitted, feeds.size());
  EXPECT_EQ(stats.lanes[1].completed, feeds.size());
}

TEST(Admission, ClassifierRoutesByContent) {
  // A custom policy that sends DEMT work to the slow lane by inspecting
  // the request — the pluggable-admission hook in action.
  class ByAlgorithm final : public AdmissionPolicy {
   public:
    [[nodiscard]] std::vector<LaneSpec> lanes() const override {
      LaneSpec fast;
      fast.name = "interactive";
      fast.weight = 4;
      LaneSpec slow;
      slow.name = "batch";
      slow.weight = 1;
      return {fast, slow};
    }
    [[nodiscard]] int classify(
        const EngineRequest& request) const noexcept override {
      return request.algorithm == EngineAlgorithm::Demt ? 1 : 0;
    }
  };
  const auto instances = make_instances(1, 12, 8, 9);
  const ByAlgorithm admission;
  AsyncOptions options;
  options.flush_after_ms = 0.0;
  options.admission = &admission;
  AsyncScheduler async(options);

  EngineRequest fast;
  fast.instance = &instances[0];
  fast.algorithm = EngineAlgorithm::FlatList;
  EngineRequest slow = fast;
  slow.algorithm = EngineAlgorithm::Demt;
  const Ticket a = async.submit(fast);
  const Ticket b = async.submit(slow);
  EXPECT_EQ(a.lane, 0u);
  EXPECT_EQ(b.lane, 1u);
  async.drain();
  EngineResult result;
  EXPECT_TRUE(async.take(a, result));
  EXPECT_TRUE(async.take(b, result));
}

TEST(Admission, ValidatesPoliciesAndLaneTables) {
  EXPECT_THROW(WeightedLanesAdmission({}), std::invalid_argument);
  EXPECT_THROW(WeightedLanesAdmission(two_lanes(0, 1)), std::invalid_argument);
  EXPECT_THROW(WeightedLanesAdmission(two_lanes(1, 1), 5),
               std::invalid_argument);

  class NoLanes final : public AdmissionPolicy {
   public:
    [[nodiscard]] std::vector<LaneSpec> lanes() const override { return {}; }
  };
  const NoLanes broken;
  AsyncOptions options;
  options.admission = &broken;
  EXPECT_THROW(AsyncScheduler{options}, std::invalid_argument);

  class BadWeight final : public AdmissionPolicy {
   public:
    [[nodiscard]] std::vector<LaneSpec> lanes() const override {
      LaneSpec lane;
      lane.weight = 0;
      return {lane};
    }
  };
  const BadWeight bad_weight;
  options.admission = &bad_weight;
  EXPECT_THROW(AsyncScheduler{options}, std::invalid_argument);
}

TEST(Admission, SingleLaneBehaviourMatchesPrePolicyScheduler) {
  // A one-lane WeightedLanesAdmission must behave exactly like the
  // default FifoAdmission: same acceptance, same results.
  const auto instances = make_instances(8, 25, 12, 13);
  std::vector<EngineRequest> requests(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    requests[i].instance = &instances[i];
    requests[i].algorithm = EngineAlgorithm::FlatList;
  }
  SchedulerEngine sync(EngineOptions{1, false});
  std::vector<EngineResult> reference;
  sync.schedule_batch(requests, reference);

  LaneSpec only;
  only.name = "only";
  const WeightedLanesAdmission admission({only});
  AsyncOptions options;
  options.shards = 2;
  options.max_batch = 4;
  options.admission = &admission;
  AsyncScheduler async(options);
  std::vector<Ticket> tickets;
  for (const auto& request : requests) {
    tickets.push_back(async.submit(request));
    ASSERT_TRUE(tickets.back().accepted());
  }
  async.drain();
  EngineResult result;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(async.take(tickets[i], result));
    EXPECT_EQ(result.cmax, reference[i].cmax);
    EXPECT_EQ(result.weighted_completion_sum,
              reference[i].weighted_completion_sum);
  }
}

TEST(Admission, FailedStreamFeedKeepsLaneTagAndNamesPolicy) {
  // The Failed path for lane-tagged stream tickets: a feed violating the
  // watermark contract (going backwards) completes Failed on its lane,
  // error() names the offence and the stream's policy, the lane's
  // completed counter still advances, and the stream stays usable.
  const int m = 8;
  Rng rng(99);
  Instance tmp = generate_instance(WorkloadFamily::Mixed, 2, m, rng);
  const StreamArrival first = moldable_arrival(tmp.task(0), 1.0);
  const StreamArrival backwards = moldable_arrival(tmp.task(1), 0.25);

  const WeightedLanesAdmission admission(two_lanes(3, 1));
  AsyncOptions options;
  options.admission = &admission;
  AsyncScheduler async(options);

  StreamOptions stream_options;
  stream_options.m = m;
  const StreamTicket stream = async.open_stream(stream_options, 1);
  ASSERT_TRUE(stream.accepted());

  const Ticket good = async.submit_stream(stream, &first, 1, 1.0);
  ASSERT_TRUE(good.accepted());
  ASSERT_EQ(async.wait(good), TicketStatus::Done);
  StreamDelivery delivery;
  ASSERT_TRUE(async.take_stream(good, delivery));

  const Ticket bad = async.submit_stream(stream, &backwards, 1, 0.25);
  ASSERT_TRUE(bad.accepted());
  EXPECT_EQ(bad.lane, 1u);  // the refusal is attributable to its lane
  EXPECT_EQ(async.wait(bad), TicketStatus::Failed);
  const std::string error = async.error(bad);
  EXPECT_NE(error.find("watermark"), std::string::npos) << error;
  EXPECT_NE(error.find("policy: flatlist"), std::string::npos) << error;
  EXPECT_GT(async.latency_seconds(bad), 0.0);
  ASSERT_TRUE(async.take_stream(bad, delivery));  // Failed frees the slot

  // The stream survives the failed feed: a valid follow-up and the close
  // still deliver, all on lane 1.
  const StreamArrival resume = moldable_arrival(tmp.task(1), 2.0);
  const Ticket next = async.submit_stream(stream, &resume, 1, 2.0);
  ASSERT_TRUE(next.accepted());
  EXPECT_EQ(async.wait(next), TicketStatus::Done);
  ASSERT_TRUE(async.take_stream(next, delivery));
  const Ticket close = async.close_stream(stream);
  EXPECT_EQ(async.wait(close), TicketStatus::Done);
  ASSERT_TRUE(async.take_stream(close, delivery));
  EXPECT_TRUE(delivery.final_delivery);
  const AsyncStats stats = async.stats();
  EXPECT_EQ(stats.lanes[1].submitted, 4u);
  EXPECT_EQ(stats.lanes[1].completed, 4u);
  EXPECT_EQ(stats.failed, 1u);
}

}  // namespace
}  // namespace moldsched
