#include "workloads/speedup_models.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "tasks/moldable_task.hpp"

namespace moldsched {
namespace {

TEST(Recurrence, FirstEntryIsSequentialTime) {
  Rng rng(1);
  const auto times = recurrence_times(7.5, 16, kHighlyParallel, rng);
  ASSERT_EQ(times.size(), 16u);
  EXPECT_DOUBLE_EQ(times[0], 7.5);
}

TEST(Recurrence, ProducesMonotoneTasksByConstruction) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    for (const auto& params : {kHighlyParallel, kWeaklyParallel}) {
      MoldableTask task(recurrence_times(5.0, 32, params, rng), 1.0);
      EXPECT_TRUE(task.is_time_monotone(1e-9));
      EXPECT_TRUE(task.is_work_monotone(1e-9));
    }
  }
}

TEST(Recurrence, HighlyParallelSpeedsUpMoreThanWeakly) {
  Rng rng(3);
  double high_sum = 0.0, weak_sum = 0.0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    high_sum += recurrence_times(10.0, 64, kHighlyParallel, rng).back();
    weak_sum += recurrence_times(10.0, 64, kWeaklyParallel, rng).back();
  }
  // Highly parallel tasks end much faster on the full machine.
  EXPECT_LT(high_sum / trials, 0.15 * 10.0);
  EXPECT_GT(weak_sum / trials, 0.5 * 10.0);
}

TEST(Recurrence, QuasiLinearUpperBoundIsIdeal) {
  // X = 1 every step gives p(j) = p(1)/j exactly; random X <= 1 can never
  // beat the ideal linear speedup.
  Rng rng(4);
  const auto times = recurrence_times(6.0, 20, kHighlyParallel, rng);
  for (int k = 1; k <= 20; ++k) {
    EXPECT_GE(times[static_cast<std::size_t>(k) - 1] * k, 6.0 * (1.0 - 1e-9));
  }
}

TEST(Recurrence, Validation) {
  Rng rng(5);
  EXPECT_THROW(recurrence_times(0.0, 4, kHighlyParallel, rng),
               std::invalid_argument);
  EXPECT_THROW(recurrence_times(1.0, 0, kHighlyParallel, rng),
               std::invalid_argument);
}

TEST(Downey, SequentialBaseline) {
  EXPECT_DOUBLE_EQ(downey_speedup(1.0, 10.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(downey_speedup(0.5, 10.0, 0.5), 1.0);
}

TEST(Downey, SaturatesAtAverageParallelism) {
  for (double sigma : {0.0, 0.3, 1.0, 1.5, 3.0}) {
    EXPECT_NEAR(downey_speedup(1000.0, 12.0, sigma), 12.0, 1e-9) << sigma;
  }
}

TEST(Downey, ZeroVarianceIsPiecewiseLinear) {
  // sigma = 0: S(n) = n up to A, then A.
  for (int n = 1; n <= 8; ++n) {
    EXPECT_NEAR(downey_speedup(n, 8.0, 0.0), n, 1e-12);
  }
  EXPECT_NEAR(downey_speedup(20.0, 8.0, 0.0), 8.0, 1e-12);
}

TEST(Downey, ContinuousAtRegimeBoundaries) {
  // sigma <= 1: branches meet at n = A and n = 2A - 1.
  const double a = 9.0, sigma = 0.6;
  EXPECT_NEAR(downey_speedup(a - 1e-9, a, sigma), downey_speedup(a + 1e-9, a, sigma),
              1e-6);
  const double knee = 2.0 * a - 1.0;
  EXPECT_NEAR(downey_speedup(knee - 1e-9, a, sigma),
              downey_speedup(knee + 1e-9, a, sigma), 1e-6);
  // sigma > 1: knee at A(1+sigma) - sigma.
  const double sigma2 = 1.8;
  const double knee2 = a * (1.0 + sigma2) - sigma2;
  EXPECT_NEAR(downey_speedup(knee2 - 1e-9, a, sigma2),
              downey_speedup(knee2 + 1e-9, a, sigma2), 1e-6);
}

TEST(Downey, MonotoneNonDecreasingInN) {
  for (double sigma : {0.2, 0.9, 1.0, 1.7}) {
    double prev = 0.0;
    for (int n = 1; n <= 64; ++n) {
      const double s = downey_speedup(n, 17.0, sigma);
      EXPECT_GE(s, prev - 1e-12);
      prev = s;
    }
  }
}

TEST(Downey, HigherVarianceLowersSpeedup) {
  // More variance in parallelism = worse speedup at the same allotment.
  EXPECT_GT(downey_speedup(8.0, 16.0, 0.2), downey_speedup(8.0, 16.0, 1.9));
}

TEST(Downey, SpeedupNeverExceedsAllotmentOrA) {
  for (double sigma : {0.0, 0.5, 1.0, 2.0}) {
    for (int n = 1; n <= 40; ++n) {
      const double s = downey_speedup(n, 10.0, sigma);
      EXPECT_LE(s, n + 1e-9);
      EXPECT_LE(s, 10.0 + 1e-9);
    }
  }
}

TEST(Downey, Validation) {
  EXPECT_THROW(downey_speedup(1.0, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(downey_speedup(1.0, 2.0, -0.1), std::invalid_argument);
}

TEST(DowneyTimes, ConvertsSpeedupToTimes) {
  const auto times = downey_times(10.0, 8, 4.0, 0.0);
  ASSERT_EQ(times.size(), 8u);
  EXPECT_DOUBLE_EQ(times[0], 10.0);
  EXPECT_NEAR(times[3], 2.5, 1e-12);   // S(4) = 4
  EXPECT_NEAR(times[7], 2.5, 1e-12);   // saturated at A = 4
}

TEST(DowneyTimes, TasksAreMonotoneAfterRepair) {
  for (double sigma : {0.0, 0.7, 1.4}) {
    MoldableTask task(downey_times(10.0, 50, 7.3, sigma), 1.0);
    task.enforce_monotonicity();
    EXPECT_TRUE(task.is_time_monotone(1e-9));
    EXPECT_TRUE(task.is_work_monotone(1e-9));
  }
}

}  // namespace
}  // namespace moldsched
