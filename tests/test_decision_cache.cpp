/// The decision cache's gate (core/decision_cache.hpp), in two suites:
///
///  - `DecisionCache`: differential tests — cache-on serving must be
///    bit-identical to cache-off across policies {demt, flatlist},
///    serve shards {1, 2, 4}, repeated/interleaved shapes, and eviction
///    pressure (capacity 1 forces thrash), plus unit tests of the
///    replay, bypass, CLOCK bound, and stats surfaces.
///
///  - `Canonical`: property tests of canonical_signature — invariant
///    under task permutation and duplicate-shape resubmission, distinct
///    under work/weight/machine perturbation beyond the quantization
///    grid, stable within one quantization sub-step — fuzzed with a
///    seeded Rng over thousands of random instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "core/decision_cache.hpp"
#include "core/policy.hpp"
#include "engine/engine.hpp"
#include "sched/validator.hpp"
#include "serve/async_scheduler.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

std::vector<Instance> make_instances(int count, int n, int m,
                                     std::uint64_t seed) {
  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  Rng rng(seed);
  std::vector<Instance> instances;
  for (int i = 0; i < count; ++i) {
    instances.push_back(generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng));
  }
  return instances;
}

/// Deep copy through the public task surface (Instance is move-only-ish
/// for tests' purposes: no copy ctor needed here).
Instance copy_instance(const Instance& src) {
  Instance out(src.procs());
  for (int t = 0; t < src.num_tasks(); ++t) {
    const MoldableTask& task = src.task(t);
    out.add_task(MoldableTask(task.times(), task.weight(), task.min_procs()));
  }
  return out;
}

/// Copy with the tasks appended in `order` (a permutation of 0..n-1).
Instance permuted_instance(const Instance& src, const std::vector<int>& order) {
  Instance out(src.procs());
  for (const int t : order) {
    const MoldableTask& task = src.task(t);
    out.add_task(MoldableTask(task.times(), task.weight(), task.min_procs()));
  }
  return out;
}

InstanceSignature signature_of(const Instance& instance, int steps = 32) {
  SignatureScratch scratch;
  return canonical_signature(instance, steps, scratch);
}

void expect_identical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.procs(), b.procs());
  for (int t = 0; t < a.num_tasks(); ++t) {
    const Placement& pa = a.placement(t);
    const Placement& pb = b.placement(t);
    EXPECT_EQ(pa.start, pb.start) << "task " << t;
    EXPECT_EQ(pa.duration, pb.duration) << "task " << t;
    EXPECT_EQ(pa.procs, pb.procs) << "task " << t;
  }
}

void expect_identical(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.cmax, b.cmax);
  EXPECT_EQ(a.weighted_completion_sum, b.weighted_completion_sum);
  ASSERT_EQ(a.has_schedule, b.has_schedule);
  if (a.has_schedule) expect_identical(a.schedule, b.schedule);
}

void expect_identical_flat(const FlatPlacements& a, const FlatPlacements& b) {
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.proc_begin, b.proc_begin);
  EXPECT_EQ(a.proc_count, b.proc_count);
  EXPECT_EQ(a.proc_ids, b.proc_ids);
}

/// Run `policy` fresh (no cache) on `instance` into `out`.
void run_fresh(const SchedulingPolicy& policy, const Instance& instance,
               FlatPlacements& out) {
  auto ws = policy.make_workspace();
  policy.schedule_into(instance, *ws, out);
}

// ---------------------------------------------------------------------------
// DecisionCache: unit + differential suite
// ---------------------------------------------------------------------------

TEST(DecisionCache, ValidatesOptions) {
  EXPECT_THROW(DecisionCache(DecisionCacheOptions{0, 1, 32}),
               std::invalid_argument);
  EXPECT_THROW(DecisionCache(DecisionCacheOptions{8, 0, 32}),
               std::invalid_argument);
  EXPECT_THROW(DecisionCache(DecisionCacheOptions{8, 1, 0}),
               std::invalid_argument);
  SignatureScratch scratch;
  const Instance instance(4);
  EXPECT_THROW((void)canonical_signature(instance, 0, scratch),
               std::invalid_argument);
  // More shards than capacity: clamped, not rejected.
  DecisionCache tiny(DecisionCacheOptions{2, 8, 32});
  EXPECT_EQ(tiny.stats().size, 0u);
}

TEST(DecisionCache, LookupMissesThenReplaysExactly) {
  const auto instances = make_instances(1, 24, 12, 71);
  const Instance& instance = instances[0];
  const FlatListPolicy policy;
  FlatPlacements fresh;
  run_fresh(policy, instance, fresh);

  DecisionCache cache(DecisionCacheOptions{16, 2, 32});
  const InstanceSignature sig =
      signature_of(instance, cache.options().quantize_steps);
  FlatPlacements replay;
  DemtDiagnostics diag;
  EXPECT_FALSE(cache.lookup(sig, policy.cache_key(), instance, replay, diag));
  DemtDiagnostics stored;
  stored.num_batches = 7;  // any marker: diag must round-trip verbatim
  cache.insert(sig, policy.cache_key(), instance, fresh, stored);
  ASSERT_TRUE(cache.lookup(sig, policy.cache_key(), instance, replay, diag));
  expect_identical_flat(replay, fresh);
  EXPECT_EQ(diag.num_batches, 7);

  const DecisionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 1u);

  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_FALSE(cache.lookup(sig, policy.cache_key(), instance, replay, diag));
}

TEST(DecisionCache, PolicyKeyZeroIsNeverCached) {
  // A policy that keeps the default cache_key() == 0 must never be
  // cached — the safe default for user-defined policies.
  struct OpaqueWorkspace final : PolicyWorkspace {
    ListPassWorkspace list;
  };
  struct OpaquePolicy final : SchedulingPolicy {
    [[nodiscard]] const char* name() const noexcept override {
      return "opaque";
    }
    [[nodiscard]] std::unique_ptr<PolicyWorkspace> make_workspace()
        const override {
      return std::make_unique<OpaqueWorkspace>();
    }
    void schedule_into(const Instance& batch, PolicyWorkspace& ws,
                       FlatPlacements& out) const override {
      flat_list_schedule(batch, static_cast<OpaqueWorkspace&>(ws).list, out);
    }
  };
  const OpaquePolicy policy;
  EXPECT_EQ(policy.cache_key(), 0u);

  const auto instances = make_instances(1, 16, 8, 5);
  DecisionCache cache(DecisionCacheOptions{8, 1, 32});
  SchedulerEngine engine(EngineOptions{1, false, &cache});
  std::vector<EngineRequest> requests(4);
  for (auto& r : requests) {
    r.instance = &instances[0];
    r.policy = &policy;
  }
  std::vector<EngineResult> results;
  engine.schedule_batch(requests, results);
  const DecisionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.inserts, 0u);
  EXPECT_EQ(stats.size, 0u);
}

TEST(DecisionCache, ExactVerificationRejectsBucketMates) {
  // Perturb one processing time well inside one quantization sub-step:
  // same signature bucket, but lookup must refuse to replay across it.
  const auto instances = make_instances(1, 12, 8, 909);
  const Instance& a = instances[0];
  Instance b(a.procs());
  for (int t = 0; t < a.num_tasks(); ++t) {
    const MoldableTask& task = a.task(t);
    std::vector<double> times = task.times();
    if (t == 3) {
      // Far from tmin (times grow with fewer procs kept equal), nudge by
      // 2^(0.01/32): ~0.02% — far below one sub-step.
      times[0] *= std::exp2(0.01 / 32.0);
    }
    b.add_task(MoldableTask(times, task.weight(), task.min_procs()));
  }
  const InstanceSignature sig_a = signature_of(a);
  const InstanceSignature sig_b = signature_of(b);
  // Not guaranteed for *any* perturbation (the value could sit on a
  // bucket edge), but deterministic for this seed: assert it so the test
  // really exercises the bucket-mate path.
  ASSERT_EQ(sig_a.hash, sig_b.hash);

  const FlatListPolicy policy;
  FlatPlacements flat_a, flat_b, replay;
  run_fresh(policy, a, flat_a);
  run_fresh(policy, b, flat_b);

  DecisionCache cache(DecisionCacheOptions{8, 1, 32});
  DemtDiagnostics diag;
  cache.insert(sig_a, policy.cache_key(), a, flat_a, diag);
  EXPECT_FALSE(cache.lookup(sig_b, policy.cache_key(), b, replay, diag));
  cache.insert(sig_b, policy.cache_key(), b, flat_b, diag);
  ASSERT_TRUE(cache.lookup(sig_a, policy.cache_key(), a, replay, diag));
  expect_identical_flat(replay, flat_a);
  ASSERT_TRUE(cache.lookup(sig_b, policy.cache_key(), b, replay, diag));
  expect_identical_flat(replay, flat_b);
}

TEST(DecisionCache, PermutedResubmissionIsItsOwnRecord) {
  const auto instances = make_instances(1, 18, 8, 31337);
  const Instance& a = instances[0];
  std::vector<int> order(static_cast<std::size_t>(a.num_tasks()));
  std::iota(order.begin(), order.end(), 0);
  std::reverse(order.begin(), order.end());
  const Instance b = permuted_instance(a, order);
  ASSERT_EQ(signature_of(a).hash, signature_of(b).hash);

  const FlatListPolicy policy;
  FlatPlacements flat_a, flat_b, replay;
  run_fresh(policy, a, flat_a);
  run_fresh(policy, b, flat_b);

  DecisionCache cache(DecisionCacheOptions{8, 1, 32});
  DemtDiagnostics diag;
  cache.insert(signature_of(a), policy.cache_key(), a, flat_a, diag);
  // The permuted twin shares the bucket but must MISS (bit-identity wins
  // over hit rate: replaying across a permutation could differ when sort
  // keys tie) ...
  EXPECT_FALSE(cache.lookup(signature_of(b), policy.cache_key(), b, replay,
                            diag));
  // ... and then coexist as its own record under the same signature.
  cache.insert(signature_of(b), policy.cache_key(), b, flat_b, diag);
  ASSERT_TRUE(
      cache.lookup(signature_of(a), policy.cache_key(), a, replay, diag));
  expect_identical_flat(replay, flat_a);
  ASSERT_TRUE(
      cache.lookup(signature_of(b), policy.cache_key(), b, replay, diag));
  expect_identical_flat(replay, flat_b);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(DecisionCache, DistinctPolicyKeysDoNotPoisonEachOther) {
  // Same instance served under two DemtOptions: each must replay its own
  // decision. This is why the cache keys on cache_key(), not the
  // per-class workspace_key() — the enum adapter stack-constructs a
  // DemtPolicy per request, and two different option sets would
  // otherwise collide.
  const auto instances = make_instances(1, 24, 12, 555);
  DemtOptions fast;
  fast.shuffles = 0;
  DemtOptions thorough;
  thorough.shuffles = 4;
  const DemtPolicy fast_policy(fast);
  const DemtPolicy thorough_policy(thorough);
  ASSERT_NE(fast_policy.cache_key(), thorough_policy.cache_key());
  ASSERT_EQ(fast_policy.cache_key(), DemtPolicy(fast).cache_key());
  // shuffle_workers must NOT affect the key (bit-identical by design).
  DemtOptions parallel = fast;
  parallel.shuffle_workers = 4;
  EXPECT_EQ(fast_policy.cache_key(), DemtPolicy(parallel).cache_key());

  DecisionCache cache(DecisionCacheOptions{16, 2, 32});
  SchedulerEngine cached(EngineOptions{1, true, &cache});
  SchedulerEngine plain(EngineOptions{1, true});

  std::vector<EngineRequest> requests(4);
  requests[0] = EngineRequest{&instances[0], EngineAlgorithm::Demt, fast};
  requests[1] = EngineRequest{&instances[0], EngineAlgorithm::Demt, thorough};
  requests[2] = requests[0];  // replay of the fast decision
  requests[3] = requests[1];  // replay of the thorough decision
  std::vector<EngineResult> with_cache, without_cache;
  cached.schedule_batch(requests, with_cache);
  plain.schedule_batch(requests, without_cache);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expect_identical(with_cache[i], without_cache[i]);
    EXPECT_EQ(with_cache[i].diag.num_batches,
              without_cache[i].diag.num_batches);
  }
  const DecisionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(DecisionCache, BypassFlagRunsFreshAndStoresNothing) {
  const auto instances = make_instances(2, 20, 10, 99);
  DecisionCache cache(DecisionCacheOptions{16, 2, 32});
  SchedulerEngine cached(EngineOptions{1, true, &cache});
  SchedulerEngine plain(EngineOptions{1, true});

  std::vector<EngineRequest> requests(4);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].instance = &instances[i % 2];
    requests[i].algorithm = EngineAlgorithm::Demt;
    requests[i].demt.shuffles = 2;
    requests[i].bypass_cache = true;
  }
  std::vector<EngineResult> with_cache, without_cache;
  cached.schedule_batch(requests, with_cache);
  plain.schedule_batch(requests, without_cache);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expect_identical(with_cache[i], without_cache[i]);
  }
  const DecisionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.inserts, 0u);
  EXPECT_EQ(stats.size, 0u);
}

TEST(DecisionCache, EvictionPressureCapacityOneStaysBitIdentical) {
  // Capacity 1 and an A/B/A/B mix: every request thrashes the single
  // record. Results must still be bit-identical to a cache-less engine.
  const auto instances = make_instances(2, 20, 10, 2718);
  DemtOptions demt;
  demt.shuffles = 2;

  DecisionCache cache(DecisionCacheOptions{1, 1, 32});
  SchedulerEngine cached(EngineOptions{1, true, &cache});
  SchedulerEngine plain(EngineOptions{1, true});

  std::vector<EngineRequest> requests;
  for (int round = 0; round < 3; ++round) {
    for (int s = 0; s < 2; ++s) {
      requests.push_back(
          EngineRequest{&instances[static_cast<std::size_t>(s)],
                        EngineAlgorithm::Demt, demt});
    }
  }
  std::vector<EngineResult> with_cache, without_cache;
  cached.schedule_batch(requests, with_cache);
  plain.schedule_batch(requests, without_cache);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expect_identical(with_cache[i], without_cache[i]);
  }
  const DecisionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, 1u);      // bounded, always
  EXPECT_GT(stats.evictions, 0u); // thrash really happened
  EXPECT_EQ(stats.hits, 0u);      // capacity 1 cannot retain both shapes
}

TEST(DecisionCache, ClockEvictionBoundsEveryShard) {
  const auto instances = make_instances(6, 12, 8, 424242);
  const FlatListPolicy policy;
  DecisionCache cache(DecisionCacheOptions{2, 1, 32});
  DemtDiagnostics diag;
  FlatPlacements flat, replay;
  for (const Instance& instance : instances) {
    run_fresh(policy, instance, flat);
    cache.insert(signature_of(instance), policy.cache_key(), instance, flat,
                 diag);
    EXPECT_LE(cache.stats().size, 2u);
  }
  const DecisionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.inserts, 6u);
  EXPECT_EQ(stats.evictions, 4u);
  // Whatever survived must replay its own decision exactly.
  int live = 0;
  for (const Instance& instance : instances) {
    if (cache.lookup(signature_of(instance), policy.cache_key(), instance,
                     replay, diag)) {
      run_fresh(policy, instance, flat);
      expect_identical_flat(replay, flat);
      ++live;
    }
  }
  EXPECT_EQ(live, 2);
}

TEST(DecisionCache, SharedAcrossEnginesLikeServeShards) {
  // One cache backing several engines (exactly how AsyncScheduler wires
  // its shards): a shape first served by engine A replays on engine B.
  const auto instances = make_instances(3, 20, 10, 808);
  DemtOptions demt;
  demt.shuffles = 2;
  DecisionCache cache(DecisionCacheOptions{32, 4, 32});
  SchedulerEngine a(EngineOptions{1, true, &cache});
  SchedulerEngine b(EngineOptions{1, true, &cache});
  SchedulerEngine plain(EngineOptions{1, true});

  std::vector<EngineRequest> requests;
  for (const Instance& instance : instances) {
    requests.push_back(EngineRequest{&instance, EngineAlgorithm::Demt, demt});
  }
  std::vector<EngineResult> via_a, via_b, fresh;
  a.schedule_batch(requests, via_a);
  EXPECT_EQ(cache.stats().hits, 0u);
  b.schedule_batch(requests, via_b);
  EXPECT_EQ(cache.stats().hits, requests.size());
  plain.schedule_batch(requests, fresh);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expect_identical(via_a[i], fresh[i]);
    expect_identical(via_b[i], fresh[i]);
    EXPECT_EQ(via_b[i].diag.dual_tests, fresh[i].diag.dual_tests);
  }
}

TEST(DecisionCache, HitMaterializesValidSchedule) {
  const auto instances = make_instances(1, 24, 12, 64);
  DemtOptions demt;
  demt.shuffles = 2;
  DecisionCache cache(DecisionCacheOptions{8, 1, 32});
  SchedulerEngine engine(EngineOptions{1, true, &cache});
  std::vector<EngineRequest> requests(
      2, EngineRequest{&instances[0], EngineAlgorithm::Demt, demt});
  std::vector<EngineResult> results;
  engine.schedule_batch(requests, results);
  ASSERT_EQ(cache.stats().hits, 1u);
  ASSERT_TRUE(results[1].has_schedule);
  expect_identical(results[0], results[1]);
  require_valid(results[1].schedule, instances[0]);
}

/// Serve-layer differential: cache-on vs cache-off must be bit-identical
/// for shards {1, 2, 4} on a repeated/interleaved shape mix, both
/// policies. Also checks the AsyncStats counters.
void run_serve_differential(bool use_demt) {
  const auto catalog = make_instances(4, 18, 8, use_demt ? 11 : 13);
  DemtOptions demt;
  demt.shuffles = 2;
  const DemtPolicy demt_policy(demt);
  const FlatListPolicy flat_policy;
  const SchedulingPolicy& policy =
      use_demt ? static_cast<const SchedulingPolicy&>(demt_policy)
               : static_cast<const SchedulingPolicy&>(flat_policy);

  // Interleaved, repeating mix over the catalog.
  const int kRequests = 32;
  std::vector<int> mix;
  Rng rng(4096);
  for (int i = 0; i < kRequests; ++i) {
    mix.push_back(static_cast<int>(
        rng.uniform_int(0, static_cast<std::int64_t>(catalog.size()) - 1)));
  }

  // Reference: synchronous engine, no cache.
  SchedulerEngine reference(EngineOptions{1, true});
  std::vector<EngineRequest> requests;
  for (const int shape : mix) {
    EngineRequest request;
    request.instance = &catalog[static_cast<std::size_t>(shape)];
    request.policy = &policy;
    requests.push_back(request);
  }
  std::vector<EngineResult> expected;
  reference.schedule_batch(requests, expected);

  for (const int shards : {1, 2, 4}) {
    DecisionCache cache(DecisionCacheOptions{64, 4, 32});
    AsyncOptions options;
    options.shards = shards;
    options.max_batch = 4;
    options.flush_after_ms = 0.0;
    options.keep_schedules = true;
    options.cache = &cache;
    AsyncScheduler serve(options);
    std::vector<Ticket> tickets;
    for (const EngineRequest& request : requests) {
      const Ticket t = serve.submit(request);
      ASSERT_TRUE(t.accepted());
      tickets.push_back(t);
    }
    serve.drain();
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      ASSERT_EQ(serve.wait(tickets[i]), TicketStatus::Done);
      EngineResult out;
      ASSERT_TRUE(serve.take(tickets[i], out));
      expect_identical(out, expected[i]);
    }
    const AsyncStats stats = serve.stats();
    EXPECT_EQ(stats.cache_hits + stats.cache_misses,
              static_cast<std::uint64_t>(kRequests));
    EXPECT_GT(stats.cache_hits, 0u);
    EXPECT_EQ(stats.cache_evictions, 0u);
  }
}

TEST(DecisionCache, ServeDifferentialDemtShards124) {
  run_serve_differential(/*use_demt=*/true);
}

TEST(DecisionCache, ServeDifferentialFlatListShards124) {
  run_serve_differential(/*use_demt=*/false);
}

TEST(DecisionCache, AsyncStatsWithoutCacheStayZero) {
  const auto instances = make_instances(1, 12, 8, 3);
  AsyncOptions options;
  options.flush_after_ms = 0.0;
  AsyncScheduler serve(options);
  EngineRequest request;
  request.instance = &instances[0];
  request.algorithm = EngineAlgorithm::FlatList;
  const Ticket t = serve.submit(request);
  ASSERT_TRUE(t.accepted());
  EXPECT_EQ(serve.wait(t), TicketStatus::Done);
  EngineResult out;
  EXPECT_TRUE(serve.take(t, out));
  const AsyncStats stats = serve.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_evictions, 0u);
}

// ---------------------------------------------------------------------------
// Canonical: property tests of the canonicalization pass
// ---------------------------------------------------------------------------

TEST(Canonical, PermutationInvariantFuzz) {
  // >= 1000 random instances: the signature must not depend on task
  // submission order.
  Rng rng(0xC0FFEE);
  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  SignatureScratch scratch;
  for (int i = 0; i < 1000; ++i) {
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 10));
    const int m = 2 + static_cast<int>(rng.uniform_int(0, 14));
    const Instance instance = generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng);
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    const Instance shuffled = permuted_instance(instance, order);
    EXPECT_EQ(canonical_signature(instance, 32, scratch).hash,
              canonical_signature(shuffled, 32, scratch).hash)
        << "instance " << i;
  }
}

TEST(Canonical, DuplicateResubmissionInvariant) {
  // A shape rebuilt from scratch (fresh heap, same values) must produce
  // the same signature — resubmission of a recurring shape is the whole
  // point of the cache. Scratch reuse must not matter either.
  const auto instances = make_instances(200, 10, 8, 1234);
  SignatureScratch scratch_a, scratch_b;
  for (const Instance& instance : instances) {
    const Instance rebuilt = copy_instance(instance);
    EXPECT_EQ(canonical_signature(instance, 32, scratch_a).hash,
              canonical_signature(rebuilt, 32, scratch_b).hash);
    EXPECT_EQ(canonical_signature(instance, 32, scratch_a).hash,
              canonical_signature(instance, 32, scratch_a).hash);
  }
}

TEST(Canonical, DistinctUnderWorkPerturbationFuzz) {
  // Scaling any one processing time by >= one full grid sub-step must
  // change the signature (2^(3/32) =~ 6.7% — three sub-steps, so even a
  // value sitting right at a bucket edge lands in a different bucket).
  Rng rng(0xFEED);
  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  SignatureScratch scratch;
  for (int i = 0; i < 500; ++i) {
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 8));
    const int m = 2 + static_cast<int>(rng.uniform_int(0, 10));
    const Instance instance = generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng);
    const int victim = static_cast<int>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    Instance perturbed(instance.procs());
    for (int t = 0; t < instance.num_tasks(); ++t) {
      const MoldableTask& task = instance.task(t);
      std::vector<double> times = task.times();
      if (t == victim) {
        for (double& v : times) v *= std::exp2(3.0 / 32.0);
      }
      perturbed.add_task(
          MoldableTask(times, task.weight(), task.min_procs()));
    }
    EXPECT_NE(canonical_signature(instance, 32, scratch).hash,
              canonical_signature(perturbed, 32, scratch).hash)
        << "instance " << i;
  }
}

TEST(Canonical, DistinctUnderWeightPerturbation) {
  const auto instances = make_instances(100, 8, 8, 777);
  SignatureScratch scratch;
  for (const Instance& instance : instances) {
    Instance perturbed(instance.procs());
    for (int t = 0; t < instance.num_tasks(); ++t) {
      const MoldableTask& task = instance.task(t);
      const double weight =
          t == 0 ? task.weight() * std::exp2(3.0 / 32.0) : task.weight();
      perturbed.add_task(
          MoldableTask(task.times(), weight, task.min_procs()));
    }
    EXPECT_NE(canonical_signature(instance, 32, scratch).hash,
              canonical_signature(perturbed, 32, scratch).hash);
  }
}

TEST(Canonical, DistinctUnderProcessorCountChange) {
  const auto instances = make_instances(100, 8, 8, 4242);
  SignatureScratch scratch;
  for (const Instance& instance : instances) {
    // Same tasks on a bigger machine: m is part of the shape.
    Instance bigger(instance.procs() + 1);
    // Same machine, one task constrained to more processors.
    Instance constrained(instance.procs());
    for (int t = 0; t < instance.num_tasks(); ++t) {
      const MoldableTask& task = instance.task(t);
      bigger.add_task(
          MoldableTask(task.times(), task.weight(), task.min_procs()));
      const int min_procs =
          t == 0 ? std::min(task.min_procs() + 1, task.max_procs())
                 : task.min_procs();
      constrained.add_task(
          MoldableTask(task.times(), task.weight(), min_procs));
    }
    const std::uint64_t base = canonical_signature(instance, 32, scratch).hash;
    EXPECT_NE(base, canonical_signature(bigger, 32, scratch).hash);
    if (instance.task(0).min_procs() < instance.task(0).max_procs()) {
      EXPECT_NE(base, canonical_signature(constrained, 32, scratch).hash);
    }
  }
}

TEST(Canonical, InvariantWithinOneQuantizationSubStep) {
  // Mid-bucket construction: every magnitude sits at the center of its
  // quantization bucket, so a multiplicative jitter of well under half a
  // sub-step must leave the signature unchanged in both directions. The
  // anchor task (pure tmin) is left untouched so the grid itself cannot
  // move.
  const int steps = 32;
  std::vector<std::uint64_t> hashes;
  for (const double jitter : {1.0, std::exp2(0.2 / steps),
                              std::exp2(-0.2 / steps)}) {
    Instance instance(4);
    // Anchor: tmin task, itself mid-bucket on the absolute grid.
    const double tmin = std::exp2((10.0 + 0.5) / steps);
    instance.add_task(MoldableTask({4 * tmin, 2 * tmin, 1.5 * tmin, tmin},
                                   std::exp2(0.5 / steps), 1));
    // Every other magnitude mid-bucket relative to tmin, then jittered.
    for (int b : {3, 7, 19}) {
      std::vector<double> times;
      for (int k = 0; k < 4; ++k) {
        times.push_back(tmin * std::exp2((b + 4 - k + 0.5) / steps) * jitter);
      }
      instance.add_task(MoldableTask(
          times, std::exp2((b + 0.5) / steps) * jitter, 1));
    }
    SignatureScratch scratch;
    hashes.push_back(canonical_signature(instance, steps, scratch).hash);
  }
  EXPECT_EQ(hashes[1], hashes[0]);
  EXPECT_EQ(hashes[2], hashes[0]);
}

TEST(Canonical, EmptyAndTrivialInstances) {
  SignatureScratch scratch;
  const Instance empty4(4);
  const Instance empty8(8);
  EXPECT_NE(canonical_signature(empty4, 32, scratch).hash,
            canonical_signature(empty8, 32, scratch).hash);
  Instance one(4);
  one.add_task(MoldableTask({4.0, 2.0, 1.5, 1.0}, 1.0, 1));
  EXPECT_NE(canonical_signature(one, 32, scratch).hash,
            canonical_signature(empty4, 32, scratch).hash);
  // Deterministic across calls and scratch objects.
  SignatureScratch other;
  EXPECT_EQ(canonical_signature(one, 32, scratch).hash,
            canonical_signature(one, 32, other).hash);
}

TEST(Canonical, FuzzedShapesRarelyCollide) {
  // 1000 independently generated shapes: a 64-bit multiset hash should
  // essentially never collide (deterministic seed, so this either always
  // passes or flags a real quality problem in the mixer).
  Rng rng(0xDECADE);
  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  SignatureScratch scratch;
  std::set<std::uint64_t> seen;
  const int kShapes = 1000;
  for (int i = 0; i < kShapes; ++i) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 11));
    const int m = 2 + static_cast<int>(rng.uniform_int(0, 14));
    const Instance instance = generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng);
    seen.insert(canonical_signature(instance, 32, scratch).hash);
  }
  EXPECT_GE(static_cast<int>(seen.size()), kShapes - 1);
}

}  // namespace
}  // namespace moldsched
