#include "sched/gantt.hpp"

#include <gtest/gtest.h>

namespace moldsched {
namespace {

TEST(Gantt, EmptySchedule) {
  Schedule schedule(2, 0);
  EXPECT_EQ(render_gantt(schedule), "(empty schedule)\n");
}

TEST(Gantt, RendersOneRowPerProcessor) {
  Schedule schedule(3, 2);
  schedule.place(0, 0.0, 2.0, {0, 1});
  schedule.place(1, 2.0, 2.0, {2});
  const std::string out = render_gantt(schedule);
  // Header + 3 processor rows.
  int rows = 0;
  for (char c : out) {
    if (c == '\n') ++rows;
  }
  EXPECT_EQ(rows, 4);
  EXPECT_NE(out.find("p00 |"), std::string::npos);
  EXPECT_NE(out.find("p02 |"), std::string::npos);
}

TEST(Gantt, TaskCharactersAppearOnTheirProcessors) {
  Schedule schedule(2, 2);
  schedule.place(0, 0.0, 1.0, {0});
  schedule.place(1, 0.0, 1.0, {1});
  const std::string out = render_gantt(schedule);
  const auto p0 = out.find("p00 |");
  const auto p1 = out.find("p01 |");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  EXPECT_EQ(out[p0 + 5], '0');
  EXPECT_EQ(out[p1 + 5], '1');
}

TEST(Gantt, WideClustersAreSummarised) {
  Schedule schedule(100, 1);
  schedule.place(0, 0.0, 1.0, {0});
  const std::string out = render_gantt(schedule);
  EXPECT_NE(out.find("gantt omitted"), std::string::npos);
}

TEST(Gantt, IdleTimeIsDotted) {
  Schedule schedule(1, 1);
  schedule.place(0, 9.0, 1.0, {0});  // long leading idle period
  GanttOptions options;
  options.width = 10;
  const std::string out = render_gantt(schedule, options);
  EXPECT_NE(out.find('.'), std::string::npos);
}

}  // namespace
}  // namespace moldsched
