/// Contracts of the streaming serving path (serve/async_scheduler.hpp):
/// per-stream deliveries stay ordered and contiguous under concurrent
/// flush() pressure, streams interleaved with one-shot traffic reproduce
/// the off-line reference and the synchronous engine for shard counts
/// {1, 2, 4}, stream feeds share the admission slot table, the stream
/// table bounds open sessions, close invalidates and recycles, and a
/// failed feed leaves its stream usable.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "serve/async_scheduler.hpp"
#include "sim/online.hpp"
#include "sim/stream.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

std::vector<OnlineJob> make_jobs(int count, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<OnlineJob> jobs;
  double release = 0.0;
  for (int i = 0; i < count; ++i) {
    Instance tmp = generate_instance(WorkloadFamily::Mixed, 1, m, rng);
    jobs.push_back(OnlineJob{tmp.task(0), release});
    release += rng.uniform(0.05, 1.0);
  }
  return jobs;
}

OfflineScheduler object_offline() {
  return [](const Instance& batch) {
    ListPassWorkspace list;
    FlatPlacements out;
    flat_list_schedule(batch, list, out);
    return out.to_schedule(batch.procs());
  };
}

/// Chunk a job list into borrowed arrival buffers + watermarks.
struct FeedPlan {
  std::vector<std::vector<StreamArrival>> chunks;
  std::vector<double> watermarks;
};

FeedPlan plan_feeds(const std::vector<OnlineJob>& jobs, std::size_t chunk) {
  FeedPlan plan;
  for (std::size_t i = 0; i < jobs.size(); i += chunk) {
    const std::size_t end = std::min(jobs.size(), i + chunk);
    std::vector<StreamArrival> arrivals;
    for (std::size_t j = i; j < end; ++j) {
      arrivals.push_back(moldable_arrival(jobs[j].task, jobs[j].release));
    }
    plan.chunks.push_back(std::move(arrivals));
    plan.watermarks.push_back(end < jobs.size() ? jobs[end].release
                                                : jobs.back().release);
  }
  return plan;
}

/// Take every ticket in order and check the deliveries reassemble the
/// reference exactly.
void expect_stream_matches(AsyncScheduler& async,
                           const std::vector<Ticket>& tickets,
                           const OnlineResult& reference,
                           const std::vector<OnlineJob>& jobs) {
  StreamDelivery delivery;
  int next_job = 0;
  std::vector<double> completion;
  for (const Ticket& ticket : tickets) {
    ASSERT_TRUE(ticket.accepted());
    ASSERT_EQ(async.wait(ticket), TicketStatus::Done);
    ASSERT_TRUE(async.take_stream(ticket, delivery));
    EXPECT_EQ(delivery.first_job, next_job);  // ordered + contiguous
    next_job += delivery.num_jobs();
    completion.insert(completion.end(), delivery.completion.begin(),
                      delivery.completion.end());
  }
  EXPECT_EQ(next_job, static_cast<int>(jobs.size()));
  EXPECT_EQ(completion, reference.completion);
  EXPECT_EQ(delivery.cmax, reference.cmax);
  EXPECT_EQ(delivery.weighted_completion_sum,
            reference.weighted_completion_sum);
  EXPECT_EQ(delivery.num_batches, reference.num_batches);
  EXPECT_TRUE(delivery.final_delivery);
}

TEST(StreamServe, OrderedDeliveryUnderConcurrentFlushes) {
  const int m = 8;
  const auto jobs = make_jobs(24, m, 20040627);
  const auto reference =
      online_batch_schedule_reference(m, jobs, object_offline());
  const FeedPlan plan = plan_feeds(jobs, 2);

  AsyncOptions options;
  options.shards = 1;
  options.max_batch = 4;
  options.flush_after_ms = 50.0;  // flush() races do the dispatching
  AsyncScheduler async(options);

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      async.flush();
      std::this_thread::yield();
    }
  });

  StreamOptions stream_options;
  stream_options.m = m;
  const StreamTicket stream = async.open_stream(stream_options);
  ASSERT_TRUE(stream.accepted());
  std::vector<Ticket> tickets;
  for (std::size_t f = 0; f < plan.chunks.size(); ++f) {
    tickets.push_back(async.submit_stream(stream, plan.chunks[f].data(),
                                          plan.chunks[f].size(),
                                          plan.watermarks[f]));
    ASSERT_TRUE(tickets.back().accepted());
  }
  tickets.push_back(async.close_stream(stream));
  async.drain();
  stop.store(true, std::memory_order_release);
  flusher.join();

  expect_stream_matches(async, tickets, reference, jobs);
  EXPECT_EQ(async.open_streams(), 0u);
}

TEST(StreamServe, StreamsAndOneShotsInterleaveDeterministically) {
  const int m = 8;
  const int num_streams = 3;
  std::vector<std::vector<OnlineJob>> stream_jobs;
  std::vector<OnlineResult> references;
  std::vector<FeedPlan> plans;
  for (int s = 0; s < num_streams; ++s) {
    stream_jobs.push_back(make_jobs(15, m, 100 + static_cast<std::uint64_t>(s)));
    references.push_back(online_batch_schedule_reference(
        m, stream_jobs.back(), object_offline()));
    plans.push_back(plan_feeds(stream_jobs.back(), 3));
  }
  const auto instances = [&] {
    Rng rng(7);
    std::vector<Instance> out;
    for (int i = 0; i < 6; ++i) {
      out.push_back(generate_instance(WorkloadFamily::Cirne, 20, m, rng));
    }
    return out;
  }();
  std::vector<EngineRequest> requests(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    requests[i].instance = &instances[i];
    requests[i].algorithm = EngineAlgorithm::FlatList;
  }
  SchedulerEngine sync(EngineOptions{1, false});
  std::vector<EngineResult> oneshot_reference;
  sync.schedule_batch(requests, oneshot_reference);

  for (int shards : {1, 2, 4}) {
    AsyncOptions options;
    options.shards = shards;
    options.max_batch = 3;
    options.flush_after_ms = 0.2;
    AsyncScheduler async(options);
    StreamOptions stream_options;
    stream_options.m = m;

    std::vector<StreamTicket> streams;
    std::vector<std::vector<Ticket>> tickets(
        static_cast<std::size_t>(num_streams));
    for (int s = 0; s < num_streams; ++s) {
      streams.push_back(async.open_stream(stream_options));
    }
    std::vector<Ticket> oneshot_tickets;
    std::size_t feed = 0;
    bool feeding = true;
    while (feeding) {
      feeding = false;
      for (int s = 0; s < num_streams; ++s) {
        const FeedPlan& plan = plans[static_cast<std::size_t>(s)];
        if (feed >= plan.chunks.size()) continue;
        feeding = true;
        tickets[static_cast<std::size_t>(s)].push_back(async.submit_stream(
            streams[static_cast<std::size_t>(s)], plan.chunks[feed].data(),
            plan.chunks[feed].size(), plan.watermarks[feed]));
      }
      if (oneshot_tickets.size() < requests.size()) {
        oneshot_tickets.push_back(async.submit(requests[oneshot_tickets.size()]));
      }
      ++feed;
    }
    for (int s = 0; s < num_streams; ++s) {
      tickets[static_cast<std::size_t>(s)].push_back(
          async.close_stream(streams[static_cast<std::size_t>(s)]));
    }
    async.drain();
    for (int s = 0; s < num_streams; ++s) {
      expect_stream_matches(async, tickets[static_cast<std::size_t>(s)],
                            references[static_cast<std::size_t>(s)],
                            stream_jobs[static_cast<std::size_t>(s)]);
    }
    EngineResult result;
    for (std::size_t i = 0; i < oneshot_tickets.size(); ++i) {
      ASSERT_TRUE(async.take(oneshot_tickets[i], result)) << "shards=" << shards;
      EXPECT_EQ(result.cmax, oneshot_reference[i].cmax);
      EXPECT_EQ(result.weighted_completion_sum,
                oneshot_reference[i].weighted_completion_sum);
    }
  }
}

TEST(StreamServe, FeedsShareTheAdmissionSlotTable) {
  const int m = 4;
  const auto jobs = make_jobs(8, m, 3);
  const FeedPlan plan = plan_feeds(jobs, 2);
  AsyncOptions options;
  options.shards = 1;
  options.queue_capacity = 3;
  options.flush_after_ms = 0.1;
  AsyncScheduler async(options);
  StreamOptions stream_options;
  stream_options.m = m;
  const StreamTicket stream = async.open_stream(stream_options);

  std::vector<Ticket> accepted;
  for (std::size_t f = 0; f < 3; ++f) {
    accepted.push_back(async.submit_stream(stream, plan.chunks[f].data(),
                                           plan.chunks[f].size(),
                                           plan.watermarks[f]));
    ASSERT_TRUE(accepted.back().accepted());
  }
  // Slot table exhausted: the 4th feed is refused at admission even
  // though it belongs to an open stream (completion does not free a slot
  // — take does).
  for (const Ticket& ticket : accepted) (void)async.wait(ticket);
  const Ticket overflow = async.submit_stream(
      stream, plan.chunks[3].data(), plan.chunks[3].size(),
      plan.watermarks[3]);
  EXPECT_FALSE(overflow.accepted());
  EXPECT_EQ(async.poll(overflow), TicketStatus::Rejected);

  StreamDelivery delivery;
  for (const Ticket& ticket : accepted) {
    ASSERT_TRUE(async.take_stream(ticket, delivery));
  }
  const Ticket retry = async.submit_stream(stream, plan.chunks[3].data(),
                                           plan.chunks[3].size(),
                                           plan.watermarks[3]);
  EXPECT_TRUE(retry.accepted());
  (void)async.wait(retry);
  ASSERT_TRUE(async.take_stream(retry, delivery));
  const Ticket close = async.close_stream(stream);
  (void)async.wait(close);
  ASSERT_TRUE(async.take_stream(close, delivery));
}

TEST(StreamServe, StreamTableBoundsAndRecycles) {
  AsyncOptions options;
  options.shards = 1;
  options.max_streams = 2;
  AsyncScheduler async(options);
  StreamOptions stream_options;
  stream_options.m = 4;
  const StreamTicket a = async.open_stream(stream_options);
  const StreamTicket b = async.open_stream(stream_options);
  ASSERT_TRUE(a.accepted());
  ASSERT_TRUE(b.accepted());
  const StreamTicket c = async.open_stream(stream_options);
  EXPECT_FALSE(c.accepted());
  EXPECT_EQ(async.stats().stream_rejected, 1u);
  EXPECT_EQ(async.open_streams(), 2u);

  const Ticket close = async.close_stream(a);
  ASSERT_TRUE(close.accepted());
  EXPECT_EQ(async.wait(close), TicketStatus::Done);
  StreamDelivery delivery;
  ASSERT_TRUE(async.take_stream(close, delivery));
  EXPECT_TRUE(delivery.final_delivery);

  const StreamTicket d = async.open_stream(stream_options);
  EXPECT_TRUE(d.accepted());
  // The recycled entry rejects traffic for the old stream ticket.
  const StreamArrival arrival = rigid_arrival(1, 1.0, 1.0, 0.0);
  EXPECT_FALSE(async.submit_stream(a, &arrival, 1, 1.0).accepted());
  EXPECT_FALSE(async.close_stream(a).accepted());
}

TEST(StreamServe, FailedFeedLeavesStreamUsable) {
  const int m = 4;
  const auto jobs = make_jobs(6, m, 11);
  AsyncOptions options;
  options.shards = 1;
  AsyncScheduler async(options);
  StreamOptions stream_options;
  stream_options.m = m;
  const StreamTicket stream = async.open_stream(stream_options);

  std::vector<StreamArrival> arrivals;
  for (const auto& job : jobs) {
    arrivals.push_back(moldable_arrival(job.task, job.release));
  }
  const Ticket first = async.submit_stream(stream, arrivals.data(), 3,
                                           jobs[3].release);
  EXPECT_EQ(async.wait(first), TicketStatus::Done);

  // Watermark regress: the engine rejects the feed on the strand; the
  // ticket fails with an explanation and the stream state is untouched.
  const Ticket bad = async.submit_stream(stream, arrivals.data() + 3, 1, 0.0);
  ASSERT_TRUE(bad.accepted());
  EXPECT_EQ(async.wait(bad), TicketStatus::Failed);
  EXPECT_NE(async.error(bad).find("watermark"), std::string::npos);
  StreamDelivery delivery;
  ASSERT_TRUE(async.take_stream(bad, delivery));
  EXPECT_EQ(delivery.num_jobs(), 0);

  const Ticket rest = async.submit_stream(stream, arrivals.data() + 3, 3,
                                          jobs.back().release);
  EXPECT_EQ(async.wait(rest), TicketStatus::Done);
  const Ticket close = async.close_stream(stream);
  EXPECT_EQ(async.wait(close), TicketStatus::Done);

  // All deliveries together still reproduce the reference.
  const auto reference =
      online_batch_schedule_reference(m, jobs, object_offline());
  std::vector<double> completion;
  for (const Ticket& ticket : {first, rest, close}) {
    ASSERT_TRUE(async.take_stream(ticket, delivery));
    completion.insert(completion.end(), delivery.completion.begin(),
                      delivery.completion.end());
  }
  EXPECT_EQ(completion, reference.completion);
}

TEST(StreamServe, TakeKindsDoNotCross) {
  const int m = 4;
  Rng rng(5);
  const Instance instance = generate_instance(WorkloadFamily::Cirne, 10, m, rng);
  AsyncOptions options;
  options.shards = 1;
  AsyncScheduler async(options);
  EngineRequest request;
  request.instance = &instance;
  request.algorithm = EngineAlgorithm::FlatList;
  const Ticket oneshot = async.submit(request);

  StreamOptions stream_options;
  stream_options.m = m;
  const StreamTicket stream = async.open_stream(stream_options);
  const StreamArrival arrival = rigid_arrival(1, 1.0, 1.0, 0.0);
  const Ticket feed = async.submit_stream(stream, &arrival, 1, 1.0);
  (void)async.wait(oneshot);
  (void)async.wait(feed);

  StreamDelivery delivery;
  EngineResult result;
  EXPECT_FALSE(async.take_stream(oneshot, delivery));
  EXPECT_FALSE(async.take(feed, result));
  EXPECT_TRUE(async.take(oneshot, result));
  EXPECT_TRUE(async.take_stream(feed, delivery));
  const Ticket close = async.close_stream(stream);
  (void)async.wait(close);
  EXPECT_TRUE(async.take_stream(close, delivery));
}

}  // namespace
}  // namespace moldsched
