#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/mpmc_queue.hpp"

namespace moldsched {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 31) {
                                     throw std::runtime_error("mid-loop");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyMoreTasksThanWorkers) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for(0, 10000, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

namespace {
/// Counting PostedTask that signals a condition variable when the target
/// number of runs is reached (post() has no completion future).
struct CountingTask : ThreadPool::PostedTask {
  void run() noexcept override {
    // The increment happens under the mutex: await()'s predicate (also
    // under the mutex) cannot be satisfied while run() still holds the
    // lock, so the task cannot be destroyed under a live run() even on a
    // spurious wakeup.
    const std::lock_guard lock(mutex);
    if (++runs >= target.load()) cv.notify_all();
  }
  void await(int expected) {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return runs.load() >= expected; });
  }
  std::atomic<int> runs{0};
  std::atomic<int> target{1};
  std::mutex mutex;
  std::condition_variable cv;
};
}  // namespace

TEST(ThreadPool, PostRunsPreallocatedTasks) {
  CountingTask task;  // outlives the pool: workers join before it dies
  ThreadPool pool(2);
  task.target = 1;
  pool.post(task);
  task.await(1);
  EXPECT_EQ(task.runs.load(), 1);
  // The node is reusable once run() returned.
  task.target = 2;
  pool.post(task);
  task.await(2);
  EXPECT_EQ(task.runs.load(), 2);
}

TEST(ThreadPool, PostInterleavesWithSubmit) {
  CountingTask task;  // outlives the pool: workers join before it dies
  ThreadPool pool(2);
  task.target = 1;
  std::atomic<int> submitted{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&submitted] { ++submitted; }));
  }
  pool.post(task);
  for (auto& f : futures) f.get();
  task.await(1);
  EXPECT_EQ(submitted.load(), 20);
  EXPECT_EQ(task.runs.load(), 1);
}

TEST(MpmcQueue, FifoWithinCapacity) {
  MpmcQueue<int> queue(4);
  EXPECT_GE(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(i));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(MpmcQueue, FullQueueFailsPushInsteadOfGrowing) {
  MpmcQueue<int> queue(2);
  const auto capacity = queue.capacity();
  for (std::size_t i = 0; i < capacity; ++i) {
    EXPECT_TRUE(queue.try_push(static_cast<int>(i)));
  }
  EXPECT_FALSE(queue.try_push(99));
  EXPECT_EQ(queue.approx_size(), capacity);
  int out = -1;
  EXPECT_TRUE(queue.try_pop(out));
  EXPECT_TRUE(queue.try_push(99));  // slot freed, push succeeds again
}

TEST(MpmcQueue, ConcurrentProducersConsumersLoseNothing) {
  MpmcQueue<int> queue(1024);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::atomic<long> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::atomic<bool> done_producing{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (!queue.try_push(value)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      int value = 0;
      for (;;) {
        if (queue.try_pop(value)) {
          popped_sum += value;
          ++popped_count;
        } else if (done_producing.load() && queue.approx_size() == 0) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  done_producing.store(true);
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  constexpr long kTotal = static_cast<long>(kProducers) * kPerProducer;
  EXPECT_EQ(popped_count.load(), kTotal);
  EXPECT_EQ(popped_sum.load(), kTotal * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace moldsched
