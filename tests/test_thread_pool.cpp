#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace moldsched {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 31) {
                                     throw std::runtime_error("mid-loop");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyMoreTasksThanWorkers) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for(0, 10000, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace moldsched
