#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moldsched {
namespace {

Instance two_task_instance() {
  Instance instance(3);
  instance.add_task(MoldableTask({4.0, 2.5, 2.0}, 2.0));
  instance.add_task(MoldableTask({6.0, 3.0, 2.5}, 1.0));
  return instance;
}

TEST(Schedule, PlaceAndQuery) {
  Schedule schedule(3, 2);
  EXPECT_FALSE(schedule.assigned(0));
  EXPECT_FALSE(schedule.complete());
  schedule.place(0, 0.0, 4.0, {0});
  schedule.place(1, 1.0, 3.0, {1, 2});
  EXPECT_TRUE(schedule.complete());
  EXPECT_DOUBLE_EQ(schedule.completion(0), 4.0);
  EXPECT_DOUBLE_EQ(schedule.completion(1), 4.0);
  EXPECT_DOUBLE_EQ(schedule.cmax(), 4.0);
  EXPECT_EQ(schedule.placement(1).nprocs(), 2);
}

TEST(Schedule, PlacementSortsProcessors) {
  Schedule schedule(4, 1);
  schedule.place(0, 0.0, 1.0, {3, 1, 2});
  const auto& procs = schedule.placement(0).procs;
  ASSERT_EQ(procs.size(), 3u);
  EXPECT_EQ(procs[0], 1);
  EXPECT_EQ(procs[1], 2);
  EXPECT_EQ(procs[2], 3);
}

TEST(Schedule, PlaceValidation) {
  Schedule schedule(2, 1);
  EXPECT_THROW(schedule.place(5, 0.0, 1.0, {0}), std::invalid_argument);
  EXPECT_THROW(schedule.place(0, -1.0, 1.0, {0}), std::invalid_argument);
  EXPECT_THROW(schedule.place(0, 0.0, 0.0, {0}), std::invalid_argument);
  EXPECT_THROW(schedule.place(0, 0.0, 1.0, {}), std::invalid_argument);
  EXPECT_THROW(schedule.place(0, 0.0, 1.0, {2}), std::invalid_argument);
  EXPECT_THROW(schedule.place(0, 0.0, 1.0, {-1}), std::invalid_argument);
  EXPECT_THROW(schedule.place(0, 0.0, 1.0, {0, 0}), std::invalid_argument);
}

TEST(Schedule, ReplaceOverwrites) {
  Schedule schedule(2, 1);
  schedule.place(0, 0.0, 1.0, {0});
  schedule.place(0, 5.0, 2.0, {1});
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 5.0);
  EXPECT_DOUBLE_EQ(schedule.completion(0), 7.0);
}

TEST(Schedule, Unplace) {
  Schedule schedule(2, 2);
  schedule.place(0, 0.0, 1.0, {0});
  schedule.place(1, 0.0, 1.0, {1});
  schedule.unplace(0);
  EXPECT_FALSE(schedule.assigned(0));
  EXPECT_TRUE(schedule.assigned(1));
  EXPECT_THROW(schedule.completion(0), std::logic_error);
  EXPECT_THROW(schedule.cmax(), std::logic_error);
}

TEST(Schedule, MetricsAgainstInstance) {
  const Instance instance = two_task_instance();
  Schedule schedule(3, 2);
  schedule.place(0, 0.0, 2.5, {0, 1});   // ends 2.5, weight 2
  schedule.place(1, 2.5, 6.0, {2});      // ends 8.5, weight 1
  EXPECT_DOUBLE_EQ(schedule.cmax(), 8.5);
  EXPECT_DOUBLE_EQ(schedule.weighted_completion_sum(instance),
                   2.0 * 2.5 + 1.0 * 8.5);
  EXPECT_DOUBLE_EQ(schedule.completion_sum(), 11.0);
}

TEST(Schedule, WeightedSumRejectsSizeMismatch) {
  const Instance instance = two_task_instance();
  Schedule schedule(3, 1);
  schedule.place(0, 0.0, 4.0, {0});
  EXPECT_THROW(schedule.weighted_completion_sum(instance), std::logic_error);
}

TEST(Schedule, ConstructorValidation) {
  EXPECT_THROW(Schedule(0, 1), std::invalid_argument);
  EXPECT_THROW(Schedule(1, -1), std::invalid_argument);
}

TEST(Schedule, EmptyScheduleCmax) {
  Schedule schedule(4, 0);
  EXPECT_TRUE(schedule.complete());
  EXPECT_DOUBLE_EQ(schedule.cmax(), 0.0);
}

}  // namespace
}  // namespace moldsched
