#include "sim/online.hpp"

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/demt.hpp"
#include "sched/validator.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

OfflineScheduler demt_offline() {
  return [](const Instance& instance) {
    return demt_schedule(instance).schedule;
  };
}

MoldableTask ideal(double seq, int m, double w = 1.0) {
  std::vector<double> times;
  for (int k = 1; k <= m; ++k) times.push_back(seq / k);
  return MoldableTask(std::move(times), w);
}

TEST(Online, AllReleasedAtZeroIsOneBatch) {
  std::vector<OnlineJob> jobs;
  for (int i = 0; i < 5; ++i) jobs.push_back({ideal(4.0, 4), 0.0});
  const auto result = online_batch_schedule(4, jobs, demt_offline());
  EXPECT_EQ(result.num_batches, 1);
  EXPECT_GT(result.cmax, 0.0);
}

TEST(Online, LateArrivalOpensSecondBatch) {
  std::vector<OnlineJob> jobs;
  jobs.push_back({ideal(8.0, 4), 0.0});
  jobs.push_back({ideal(8.0, 4), 0.1});  // arrives while batch 1 runs
  const auto result = online_batch_schedule(4, jobs, demt_offline());
  EXPECT_EQ(result.num_batches, 2);
  // Job 1 cannot start before batch 0 completes.
  EXPECT_GE(result.schedule.placement(1).start,
            result.schedule.placement(0).finish() - 1e-9);
}

TEST(Online, RespectsReleaseDates) {
  std::vector<OnlineJob> jobs;
  jobs.push_back({ideal(2.0, 4), 0.0});
  jobs.push_back({ideal(2.0, 4), 100.0});
  const auto result = online_batch_schedule(4, jobs, demt_offline());
  EXPECT_GE(result.schedule.placement(1).start, 100.0 - 1e-9);
  EXPECT_DOUBLE_EQ(result.flow[1], result.completion[1] - 100.0);
}

TEST(Online, ScheduleIsGloballyFeasible) {
  Rng rng(5);
  std::vector<OnlineJob> jobs;
  Instance reference(8);
  std::vector<double> releases;
  double release = 0.0;
  for (int i = 0; i < 25; ++i) {
    Instance tmp = generate_instance(WorkloadFamily::Mixed, 1, 8, rng);
    jobs.push_back({tmp.task(0), release});
    reference.add_task(tmp.task(0));
    releases.push_back(release);
    release += rng.uniform(0.0, 2.0);
  }
  const auto result = online_batch_schedule(8, jobs, demt_offline());
  ValidationOptions options;
  options.releases = releases;
  const auto report = validate_schedule(result.schedule, reference, options);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(Online, BatchStartsAreMonotone) {
  Rng rng(6);
  std::vector<OnlineJob> jobs;
  for (int i = 0; i < 12; ++i) {
    Instance tmp = generate_instance(WorkloadFamily::HighlyParallel, 1, 4, rng);
    jobs.push_back({tmp.task(0), static_cast<double>(i)});
  }
  const auto result = online_batch_schedule(4, jobs, demt_offline());
  for (std::size_t b = 1; b < result.batch_starts.size(); ++b) {
    EXPECT_GT(result.batch_starts[b], result.batch_starts[b - 1]);
  }
}

TEST(Online, WorksWithBaselineSchedulers) {
  std::vector<OnlineJob> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back({ideal(3.0, 4), 0.5 * i});
  const auto result = online_batch_schedule(
      4, jobs, [](const Instance& instance) { return gang_schedule(instance); });
  EXPECT_GE(result.num_batches, 1);
  EXPECT_GT(result.weighted_flow_sum, 0.0);
}

TEST(Online, ReservationShrinksTheMachine) {
  // Proc 3 reserved forever: a 4-proc-capable job must still complete using
  // only 3 processors.
  std::vector<OnlineJob> jobs;
  jobs.push_back({ideal(6.0, 4), 0.0});
  std::vector<NodeReservation> reservations = {{3, 0.0, 1e9}};
  const auto result =
      online_batch_schedule(4, jobs, demt_offline(), reservations);
  for (int proc : result.schedule.placement(0).procs) {
    EXPECT_NE(proc, 3);
  }
}

TEST(Online, ReservationDelaysWhenMachineFullyBlocked) {
  std::vector<OnlineJob> jobs;
  jobs.push_back({ideal(2.0, 2), 0.0});
  std::vector<NodeReservation> reservations = {{0, 0.0, 5.0}, {1, 0.0, 5.0}};
  const auto result =
      online_batch_schedule(2, jobs, demt_offline(), reservations);
  EXPECT_GE(result.schedule.placement(0).start, 5.0 - 1e-9);
}

TEST(Online, TwoRhoCompetitiveShape) {
  // The framework's guarantee: on-line cmax <= 2 * (batch algorithm's
  // off-line cmax had all jobs been known). Verify a relaxed version: the
  // on-line cmax is at most ~2.5x the clairvoyant DEMT cmax.
  Rng rng(7);
  Instance clairvoyant(8);
  std::vector<OnlineJob> jobs;
  double release = 0.0;
  for (int i = 0; i < 20; ++i) {
    Instance tmp = generate_instance(WorkloadFamily::Cirne, 1, 8, rng);
    jobs.push_back({tmp.task(0), release});
    clairvoyant.add_task(tmp.task(0));
    release += rng.uniform(0.0, 0.5);
  }
  const auto online = online_batch_schedule(8, jobs, demt_offline());
  const auto offline = demt_schedule(clairvoyant);
  // Off-line ignores releases, so add the last release to its horizon.
  const double reference = offline.schedule.cmax() + release;
  EXPECT_LE(online.cmax, 2.5 * reference);
}

TEST(Online, Validation) {
  EXPECT_THROW(online_batch_schedule(0, {{ideal(1.0, 1), 0.0}}, demt_offline()),
               std::invalid_argument);
  EXPECT_THROW(online_batch_schedule(2, {}, demt_offline()),
               std::invalid_argument);
  EXPECT_THROW(
      online_batch_schedule(2, {{ideal(1.0, 2), -1.0}}, demt_offline()),
      std::invalid_argument);
  EXPECT_THROW(online_batch_schedule(2, {{ideal(1.0, 2), 0.0}}, demt_offline(),
                                     {{5, 0.0, 1.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace moldsched
