#include "tasks/instance.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace moldsched {
namespace {

Instance small_instance() {
  Instance instance(4);
  instance.add_task(MoldableTask({8.0, 5.0, 4.0, 3.5}, 2.0));
  instance.add_task(MoldableTask({2.0, 1.5}, 1.0));
  instance.add_task(MoldableTask({6.0, 3.0, 2.0, 1.6}, 3.0));
  return instance;
}

TEST(Instance, ConstructionAndAccessors) {
  const Instance instance = small_instance();
  EXPECT_EQ(instance.procs(), 4);
  EXPECT_EQ(instance.num_tasks(), 3);
  EXPECT_FALSE(instance.empty());
  EXPECT_DOUBLE_EQ(instance.task(1).time(1), 2.0);
  EXPECT_DOUBLE_EQ(instance.total_weight(), 6.0);
}

TEST(Instance, RejectsBadMachine) {
  EXPECT_THROW(Instance(0), std::invalid_argument);
  EXPECT_THROW(Instance(-3), std::invalid_argument);
}

TEST(Instance, RejectsOversizedTask) {
  Instance instance(2);
  EXPECT_THROW(instance.add_task(MoldableTask({3.0, 2.0, 1.5}, 1.0)),
               std::invalid_argument);
}

TEST(Instance, AddTaskReturnsIndex) {
  Instance instance(4);
  EXPECT_EQ(instance.add_task(MoldableTask({1.0}, 1.0)), 0);
  EXPECT_EQ(instance.add_task(MoldableTask({2.0}, 1.0)), 1);
}

TEST(Instance, Tmin) {
  const Instance instance = small_instance();
  // Fastest achievable time over all tasks: task 1 at 2 procs = 1.5... but
  // task 2 reaches 1.6 at 4 procs; min is 1.5.
  EXPECT_DOUBLE_EQ(instance.tmin(), 1.5);
}

TEST(Instance, TminThrowsOnEmpty) {
  Instance instance(4);
  EXPECT_THROW(instance.tmin(), std::logic_error);
}

TEST(Instance, TotalMinWork) {
  const Instance instance = small_instance();
  // Min works: task0 = 8 (1 proc), task1 = 2 (1 proc), task2 = 6 (1 proc).
  EXPECT_DOUBLE_EQ(instance.total_min_work(), 16.0);
}

TEST(Instance, MonotonicityCheck) {
  Instance instance(2);
  instance.add_task(MoldableTask({4.0, 3.0}, 1.0));
  EXPECT_TRUE(instance.is_monotone());
  instance.add_task(MoldableTask({3.0, 4.0}, 1.0));  // time increases
  EXPECT_FALSE(instance.is_monotone());
}

TEST(Instance, SerializationRoundTrip) {
  const Instance original = small_instance();
  std::stringstream buffer;
  original.save(buffer);
  const Instance loaded = Instance::load(buffer);
  ASSERT_EQ(loaded.num_tasks(), original.num_tasks());
  EXPECT_EQ(loaded.procs(), original.procs());
  for (int i = 0; i < original.num_tasks(); ++i) {
    const auto& a = original.task(i);
    const auto& b = loaded.task(i);
    ASSERT_EQ(a.max_procs(), b.max_procs());
    EXPECT_EQ(a.min_procs(), b.min_procs());
    EXPECT_DOUBLE_EQ(a.weight(), b.weight());
    for (int k = 1; k <= a.max_procs(); ++k) {
      EXPECT_DOUBLE_EQ(a.time(k), b.time(k));
    }
  }
}

TEST(Instance, SerializationPreservesRigidTasks) {
  Instance instance(3);
  instance.add_task(MoldableTask({6.0, 4.0, 3.0}, 1.5, /*min_procs=*/2));
  std::stringstream buffer;
  instance.save(buffer);
  const Instance loaded = Instance::load(buffer);
  EXPECT_EQ(loaded.task(0).min_procs(), 2);
}

TEST(Instance, LoadRejectsGarbage) {
  std::stringstream bad("not-an-instance v1\n");
  EXPECT_THROW(Instance::load(bad), std::runtime_error);
  std::stringstream truncated("moldsched-instance v1\nm 4\nn 1\ntask 1.0 1 2 5.0");
  EXPECT_THROW(Instance::load(truncated), std::runtime_error);
}

}  // namespace
}  // namespace moldsched
