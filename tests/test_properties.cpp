/// Cross-module property tests: every algorithm, on every workload family,
/// must produce feasible schedules whose metrics dominate both lower
/// bounds. These sweeps are the strongest correctness net in the suite —
/// any unsound bound or infeasible schedule trips them.

#include <gtest/gtest.h>

#include <tuple>

#include "dualapprox/cmax_estimator.hpp"
#include "exp/algorithms.hpp"
#include "lp/minsum_bound.hpp"
#include "sched/validator.hpp"
#include "sim/event_sim.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

using Param = std::tuple<WorkloadFamily, int>;  // family, n

class AllAlgorithmsSweep : public ::testing::TestWithParam<Param> {};

INSTANTIATE_TEST_SUITE_P(
    FamilySizeGrid, AllAlgorithmsSweep,
    ::testing::Combine(::testing::Values(WorkloadFamily::WeaklyParallel,
                                         WorkloadFamily::HighlyParallel,
                                         WorkloadFamily::Mixed,
                                         WorkloadFamily::Cirne),
                       ::testing::Values(5, 20, 45)),
    [](const auto& info) {
      return std::string(family_name(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(AllAlgorithmsSweep, SchedulesAreFeasibleAndDominateBounds) {
  const auto [family, n] = GetParam();
  const int m = 16;
  Rng rng(static_cast<std::uint64_t>(n) * 131 + 7);
  const Instance instance = generate_instance(family, n, m, rng);

  const auto estimate = estimate_cmax(instance);
  const auto minsum_lb = minsum_lower_bound(instance);
  ASSERT_GT(estimate.lower_bound, 0.0);
  ASSERT_GT(minsum_lb.bound, 0.0);

  for (const auto& algorithm : standard_algorithms()) {
    const Schedule schedule = algorithm.run(instance);
    // Static feasibility.
    const auto report = validate_schedule(schedule, instance);
    ASSERT_TRUE(report.ok) << algorithm.name << ": " << report.errors[0];
    // Dynamic feasibility (independent event replay).
    const auto sim = simulate_execution(schedule, instance);
    ASSERT_TRUE(sim.ok) << algorithm.name << ": " << sim.errors[0];
    // Both criteria dominate their lower bounds.
    EXPECT_GE(schedule.cmax(), estimate.lower_bound * (1.0 - 1e-9))
        << algorithm.name;
    EXPECT_GE(schedule.weighted_completion_sum(instance),
              minsum_lb.bound * (1.0 - 1e-9))
        << algorithm.name;
    // Simulated metrics equal schedule metrics.
    EXPECT_NEAR(sim.cmax, schedule.cmax(), 1e-9) << algorithm.name;
  }
}

TEST_P(AllAlgorithmsSweep, SquashedAreaNeverExceedsLpBound) {
  // Not a theorem in general, but with the LP taking the max with the
  // squashed bound, the reported bound must dominate it.
  const auto [family, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 977 + 3);
  const Instance instance = generate_instance(family, n, 16, rng);
  const auto lb = minsum_lower_bound(instance);
  EXPECT_GE(lb.bound, squashed_area_bound(instance) * (1.0 - 1e-12));
}

class DemtOptionSweep
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Options, DemtOptionSweep,
    ::testing::Combine(::testing::Bool(),       // merge_small_tasks
                       ::testing::Bool(),       // shuffle_batch_order
                       ::testing::Values(0, 4)  // shuffles
                       ),
    [](const auto& info) {
      return std::string("merge") +
             (std::get<0>(info.param) ? "1" : "0") + "_batchshuf" +
             (std::get<1>(info.param) ? "1" : "0") + "_shuf" +
             std::to_string(std::get<2>(info.param));
    });

TEST_P(DemtOptionSweep, EveryConfigurationIsFeasible) {
  const auto [merge, batch_shuffle, shuffles] = GetParam();
  DemtOptions options;
  options.merge_small_tasks = merge;
  options.shuffle_batch_order = batch_shuffle;
  options.shuffles = shuffles;
  Rng rng(808);
  for (auto family : all_families()) {
    const Instance instance = generate_instance(family, 25, 12, rng);
    const auto result = demt_schedule(instance, options);
    const auto report = validate_schedule(result.schedule, instance);
    ASSERT_TRUE(report.ok)
        << family_name(family) << ": " << report.errors[0];
  }
}

TEST(Properties, LowerBoundsHoldUnderWeightScaling) {
  // Scaling all weights by c scales both the LP bound and every schedule's
  // minsum by c; ratios are invariant.
  Rng rng(17);
  const Instance base =
      generate_instance(WorkloadFamily::HighlyParallel, 20, 8, rng);
  Instance scaled(8);
  for (const auto& task : base.tasks()) {
    scaled.add_task(MoldableTask(task.times(), task.weight() * 4.0));
  }
  const auto lb_base = minsum_lower_bound(base);
  const auto lb_scaled = minsum_lower_bound(scaled);
  EXPECT_NEAR(lb_scaled.bound, 4.0 * lb_base.bound,
              1e-5 * lb_scaled.bound + 1e-9);
}

TEST(Properties, CmaxLowerBoundHoldsUnderTimeScaling) {
  Rng rng(19);
  const Instance base =
      generate_instance(WorkloadFamily::Mixed, 20, 8, rng);
  Instance scaled(8);
  for (const auto& task : base.tasks()) {
    std::vector<double> times = task.times();
    for (auto& t : times) t *= 3.0;
    scaled.add_task(MoldableTask(std::move(times), task.weight()));
  }
  const auto est_base = estimate_cmax(base);
  const auto est_scaled = estimate_cmax(scaled);
  EXPECT_NEAR(est_scaled.lower_bound, 3.0 * est_base.lower_bound,
              1e-3 * est_scaled.lower_bound);
}

}  // namespace
}  // namespace moldsched
