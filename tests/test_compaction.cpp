#include "sched/compaction.hpp"

#include <gtest/gtest.h>

#include "sched/validator.hpp"

namespace moldsched {
namespace {

TEST(PullForward, MovesTaskToTimeZero) {
  Schedule schedule(2, 1);
  schedule.place(0, 5.0, 2.0, {0});
  const int moved = pull_forward(schedule);
  EXPECT_EQ(moved, 1);
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 0.0);
}

TEST(PullForward, StopsAtPredecessorOnSharedProcessor) {
  Schedule schedule(2, 2);
  schedule.place(0, 0.0, 3.0, {0});
  schedule.place(1, 7.0, 2.0, {0, 1});
  pull_forward(schedule);
  EXPECT_DOUBLE_EQ(schedule.placement(1).start, 3.0);
}

TEST(PullForward, CascadesAcrossPasses) {
  // Task 2 can only move after task 1 moved: needs a second pass.
  Schedule schedule(1, 3);
  schedule.place(0, 0.0, 1.0, {0});
  schedule.place(1, 5.0, 1.0, {0});
  schedule.place(2, 9.0, 1.0, {0});
  pull_forward(schedule);
  EXPECT_DOUBLE_EQ(schedule.placement(1).start, 1.0);
  EXPECT_DOUBLE_EQ(schedule.placement(2).start, 2.0);
}

TEST(PullForward, FixpointOnTightSchedule) {
  Schedule schedule(1, 2);
  schedule.place(0, 0.0, 2.0, {0});
  schedule.place(1, 2.0, 1.0, {0});
  EXPECT_EQ(pull_forward(schedule), 0);
}

TEST(PullForward, DoesNotJumpOverBusyInterval) {
  // Proc 0: [0,4) busy by task 0; task 1 at [6, 8) on procs {0,1}. Task 1
  // may only reach t=4, not 0 (processor 0 still busy earlier).
  Schedule schedule(2, 2);
  schedule.place(0, 0.0, 4.0, {0});
  schedule.place(1, 6.0, 2.0, {0, 1});
  pull_forward(schedule);
  EXPECT_DOUBLE_EQ(schedule.placement(1).start, 4.0);
}

TEST(PullForward, PreservesFeasibility) {
  Instance instance(4);
  for (int i = 0; i < 8; ++i) {
    instance.add_task(MoldableTask({4.0, 2.0, 1.5, 1.2}, 1.0));
  }
  Schedule schedule(4, 8);
  // Staircase with big gaps; tasks alternate between the disjoint pairs
  // {0,1} and {2,3}, so the compacted schedule runs two tasks at a time.
  for (int i = 0; i < 8; ++i) {
    const int base = (i % 2) * 2;
    schedule.place(i, 10.0 * i, 2.0, {base, base + 1});
  }
  pull_forward(schedule);
  ValidationOptions options;
  options.check_durations = false;
  const auto report = validate_schedule(schedule, instance, options);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
  // 4 tasks per processor pair, 2.0 each: everything fits within 8.
  EXPECT_LE(schedule.cmax(), 8.0 + 1e-9);
}

TEST(PullForward, IgnoresUnassignedTasks) {
  Schedule schedule(2, 3);
  schedule.place(0, 4.0, 1.0, {0});
  // tasks 1, 2 unassigned
  EXPECT_EQ(pull_forward(schedule), 1);
  EXPECT_DOUBLE_EQ(schedule.placement(0).start, 0.0);
}

}  // namespace
}  // namespace moldsched
