#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "core/demt.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

Instance small_instance() {
  Instance instance(4);
  instance.add_task(MoldableTask({4.0, 2.5, 2.0, 1.8}, 1.0));
  instance.add_task(MoldableTask({3.0, 1.5, 1.2, 1.0}, 2.0));
  return instance;
}

TEST(EventSim, ReplaysFeasibleSchedule) {
  const Instance instance = small_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 2.5, {0, 1});
  schedule.place(1, 2.5, 3.0, {0});
  const auto sim = simulate_execution(schedule, instance);
  EXPECT_TRUE(sim.ok) << (sim.errors.empty() ? "" : sim.errors[0]);
  EXPECT_DOUBLE_EQ(sim.completion[0], 2.5);
  EXPECT_DOUBLE_EQ(sim.completion[1], 5.5);
  EXPECT_DOUBLE_EQ(sim.cmax, 5.5);
  EXPECT_DOUBLE_EQ(sim.weighted_completion_sum, 1.0 * 2.5 + 2.0 * 5.5);
}

TEST(EventSim, MetricsMatchScheduleObject) {
  Rng rng(64);
  const Instance instance =
      generate_instance(WorkloadFamily::Mixed, 30, 8, rng);
  const auto result = demt_schedule(instance);
  const auto sim = simulate_execution(result.schedule, instance);
  EXPECT_TRUE(sim.ok);
  EXPECT_NEAR(sim.cmax, result.schedule.cmax(), 1e-9);
  EXPECT_NEAR(sim.weighted_completion_sum,
              result.schedule.weighted_completion_sum(instance), 1e-6);
}

TEST(EventSim, DetectsDoubleBooking) {
  const Instance instance = small_instance();
  Schedule schedule(4, 2);
  // Durations match the model (p(2) = 2.5 and 1.5) so the ONLY error is
  // the conflict: proc 1 double-booked during [1.0, 2.5).
  schedule.place(0, 0.0, 2.5, {0, 1});
  schedule.place(1, 1.0, 1.5, {1, 2});
  const auto sim = simulate_execution(schedule, instance);
  EXPECT_FALSE(sim.ok);
  ASSERT_FALSE(sim.errors.empty());
  EXPECT_NE(sim.errors[0].find("still running"), std::string::npos);
}

TEST(EventSim, DetectsDurationMismatch) {
  const Instance instance = small_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 9.9, {0, 1});  // p(2) is 2.5
  schedule.place(1, 0.0, 1.0, {2, 3, 0});  // also wrong procs count time
  const auto sim = simulate_execution(schedule, instance);
  EXPECT_FALSE(sim.ok);
}

TEST(EventSim, DetectsMissingTask) {
  const Instance instance = small_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 2.5, {0, 1});
  const auto sim = simulate_execution(schedule, instance);
  EXPECT_FALSE(sim.ok);
  EXPECT_NE(sim.errors[0].find("never starts"), std::string::npos);
}

TEST(EventSim, BackToBackTasksShareProcessorCleanly) {
  const Instance instance = small_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 4.0, {0});
  schedule.place(1, 4.0, 3.0, {0});  // same processor, abutting
  const auto sim = simulate_execution(schedule, instance);
  EXPECT_TRUE(sim.ok) << (sim.errors.empty() ? "" : sim.errors[0]);
}

TEST(EventSim, UtilisationComputed) {
  const Instance instance = small_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 2.5, {0, 1});
  schedule.place(1, 0.0, 1.5, {2, 3});
  const auto sim = simulate_execution(schedule, instance);
  // Busy area = 2*2.5 + 2*1.5 = 8 over 4 procs * cmax 2.5 = 10.
  EXPECT_NEAR(sim.utilisation, 0.8, 1e-12);
}

TEST(EventSim, ShapeMismatchReported) {
  const Instance instance = small_instance();
  Schedule schedule(3, 2);
  const auto sim = simulate_execution(schedule, instance);
  EXPECT_FALSE(sim.ok);
}

}  // namespace
}  // namespace moldsched
