#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/report.hpp"

namespace moldsched {
namespace {

PointConfig tiny_point() {
  PointConfig config;
  config.family = WorkloadFamily::HighlyParallel;
  config.n = 10;
  config.m = 8;
  config.runs = 3;
  config.seed = 7;
  return config;
}

TEST(Experiment, RunPointProducesAllAlgorithms) {
  const auto algorithms = standard_algorithms();
  const auto result = run_point(tiny_point(), algorithms);
  EXPECT_EQ(result.algorithm_order.size(), 6u);
  for (const auto& name : result.algorithm_order) {
    const auto& stats = result.stats.at(name);
    EXPECT_EQ(stats.cmax_ratio.count(), 3u);
    EXPECT_EQ(stats.minsum_ratio.count(), 3u);
    // Ratios against lower bounds are at least 1 (up to tolerance).
    EXPECT_GE(stats.cmax_ratio.min_ratio(), 1.0 - 1e-6) << name;
    EXPECT_GE(stats.minsum_ratio.min_ratio(), 1.0 - 1e-6) << name;
  }
}

TEST(Experiment, ParallelAndSerialAgree) {
  const auto algorithms = algorithms_by_name({"DEMT", "SAF"});
  const auto serial = run_point(tiny_point(), algorithms, nullptr);
  ThreadPool pool(4);
  const auto parallel = run_point(tiny_point(), algorithms, &pool);
  for (const auto& name : serial.algorithm_order) {
    EXPECT_DOUBLE_EQ(serial.stats.at(name).cmax_ratio.ratio(),
                     parallel.stats.at(name).cmax_ratio.ratio())
        << name;
    EXPECT_DOUBLE_EQ(serial.stats.at(name).minsum_ratio.ratio(),
                     parallel.stats.at(name).minsum_ratio.ratio())
        << name;
  }
}

TEST(Experiment, DeterministicAcrossCalls) {
  const auto algorithms = algorithms_by_name({"Gang"});
  const auto a = run_point(tiny_point(), algorithms);
  const auto b = run_point(tiny_point(), algorithms);
  EXPECT_DOUBLE_EQ(a.stats.at("Gang").cmax_ratio.ratio(),
                   b.stats.at("Gang").cmax_ratio.ratio());
}

TEST(Experiment, LpBoundCanBeDisabled) {
  PointConfig config = tiny_point();
  config.compute_lp_bound = false;
  const auto algorithms = algorithms_by_name({"DEMT"});
  const auto result = run_point(config, algorithms);
  EXPECT_EQ(result.stats.at("DEMT").minsum_ratio.count(), 0u);
  EXPECT_EQ(result.stats.at("DEMT").cmax_ratio.count(), 3u);
}

TEST(Experiment, UnknownAlgorithmThrows) {
  EXPECT_THROW(algorithms_by_name({"Nope"}), std::invalid_argument);
}

TEST(Experiment, Validation) {
  PointConfig config = tiny_point();
  config.runs = 0;
  EXPECT_THROW(run_point(config, standard_algorithms()),
               std::invalid_argument);
  EXPECT_THROW(run_point(tiny_point(), {}), std::invalid_argument);
}

TEST(Report, FigureRunsAndPrints) {
  FigureConfig config;
  config.title = "smoke figure";
  config.family = WorkloadFamily::Mixed;
  config.ns = {8, 12};
  config.m = 8;
  config.runs = 2;
  config.threads = 2;
  const auto result = run_figure(config);
  ASSERT_EQ(result.points.size(), 2u);

  std::ostringstream text;
  print_figure(result, text);
  EXPECT_NE(text.str().find("smoke figure"), std::string::npos);
  EXPECT_NE(text.str().find("Cmax ratio"), std::string::npos);
  EXPECT_NE(text.str().find("DEMT"), std::string::npos);

  std::ostringstream csv;
  write_figure_csv(result, csv);
  // Header + 2 points x 6 algorithms = 13 lines.
  int lines = 0;
  for (char c : csv.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 13);

  // Gnuplot emission: a .dat with one row per n and a .gp referencing it.
  const std::string prefix = "/tmp/moldsched_test_fig";
  ASSERT_TRUE(write_figure_gnuplot(result, prefix));
  std::ifstream dat(prefix + ".dat");
  ASSERT_TRUE(dat.good());
  int dat_lines = 0;
  std::string line;
  while (std::getline(dat, line)) ++dat_lines;
  EXPECT_EQ(dat_lines, 3);  // header + 2 points
  std::ifstream gp(prefix + ".gp");
  ASSERT_TRUE(gp.good());
  std::stringstream gp_content;
  gp_content << gp.rdbuf();
  EXPECT_NE(gp_content.str().find("multiplot"), std::string::npos);
  EXPECT_NE(gp_content.str().find("Cmax ratio"), std::string::npos);
  std::remove((prefix + ".dat").c_str());
  std::remove((prefix + ".gp").c_str());
}

TEST(Report, GnuplotRejectsEmptyResult) {
  FigureResult empty;
  EXPECT_FALSE(write_figure_gnuplot(empty, "/tmp/moldsched_empty"));
}

}  // namespace
}  // namespace moldsched
