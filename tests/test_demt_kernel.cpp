/// Differential harness for the vectorized SoA DEMT kernels: every
/// vectorized entry point is locked bit-identical to its retained scalar
/// `*_reference` twin across seeded fuzz instances — {moldable, rigid,
/// divisible} task mixes, machine sizes m in {1, 4, 64, 257}, and both
/// serving policies (demt, flatlist). On top of the end-to-end lock, each
/// kernel gets its own differential (knapsack row sweep, dual-test DP,
/// dual-approximation search), the SoA allotment tables get property
/// tests (sorted rows, monotone prefix argmins, agreement with the scalar
/// AllotmentTable and the task's own queries at every index), and the
/// dual-test call-count regression plus the monotone fast path are pinned
/// on the vectorized path. Combined the suite runs well over a thousand
/// seeded instances; all comparisons are exact (EXPECT_EQ on doubles) —
/// "close" is a bug here.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/demt.hpp"
#include "core/knapsack.hpp"
#include "core/policy.hpp"
#include "dualapprox/cmax_estimator.hpp"
#include "dualapprox/dual_test.hpp"
#include "sched/flat_schedule.hpp"
#include "sched/validator.hpp"
#include "tasks/allotment_table.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

// ------------------------------------------------------------ fuzz mixes

/// Fully moldable task with a power-law speedup and occasional
/// non-monotone bumps, so the min-work-vs-canonical divergence paths of
/// the tables and the dual test are exercised, not just the monotone fast
/// path.
MoldableTask make_moldable(Rng& rng, int m) {
  const double seq = rng.uniform(0.5, 10.0);
  const double alpha = rng.uniform(0.3, 1.0);
  std::vector<double> times;
  for (int k = 1; k <= m; ++k) {
    double t = seq / std::pow(static_cast<double>(k), alpha);
    if (k > 1 && rng.bernoulli(0.15)) t *= rng.uniform(1.05, 1.5);
    times.push_back(t);
  }
  return MoldableTask(std::move(times), rng.uniform(1.0, 10.0));
}

/// Rigid task: min_procs == max_procs == k for a random k <= m.
MoldableTask make_rigid(Rng& rng, int m) {
  const int k = static_cast<int>(rng.uniform_int(1, m));
  const double seq = rng.uniform(0.5, 10.0);
  std::vector<double> times;
  for (int j = 1; j <= k; ++j) times.push_back(seq / j);
  return MoldableTask(std::move(times), rng.uniform(1.0, 10.0), k);
}

/// Divisible-load-style task: near-perfect linear speedup plus a constant
/// startup overhead, so time(k) strictly decreases and work(k) strictly
/// increases — strictly monotone for the dual test's fast path.
MoldableTask make_divisible(Rng& rng, int m) {
  const double seq = rng.uniform(0.5, 10.0);
  std::vector<double> times;
  for (int k = 1; k <= m; ++k) times.push_back(seq / k + 0.005);
  return MoldableTask(std::move(times), rng.uniform(1.0, 10.0));
}

enum class Mix { Moldable, Rigid, Divisible };

Instance make_mix_instance(Mix mix, int n, int m, Rng& rng) {
  Instance instance(m);
  for (int i = 0; i < n; ++i) {
    switch (mix) {
      case Mix::Moldable:
        instance.add_task(make_moldable(rng, m));
        break;
      case Mix::Rigid:
        // Pure rigid batches can leave the knapsack with nothing to
        // choose; mix one-third moldable in so every pipeline stage runs.
        instance.add_task(i % 3 == 0 ? make_moldable(rng, m)
                                     : make_rigid(rng, m));
        break;
      case Mix::Divisible:
        instance.add_task(make_divisible(rng, m));
        break;
    }
  }
  return instance;
}

const std::vector<int>& machine_sizes() {
  static const std::vector<int> kSizes{1, 4, 64, 257};
  return kSizes;
}

// ------------------------------------------------------ exact comparators

void expect_identical_schedules(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.procs(), b.procs());
  for (int t = 0; t < a.num_tasks(); ++t) {
    ASSERT_EQ(a.assigned(t), b.assigned(t)) << "task " << t;
    if (!a.assigned(t)) continue;
    const Placement& pa = a.placement(t);
    const Placement& pb = b.placement(t);
    EXPECT_EQ(pa.start, pb.start) << "task " << t;
    EXPECT_EQ(pa.duration, pb.duration) << "task " << t;
    EXPECT_EQ(pa.procs, pb.procs) << "task " << t;
  }
}

/// Everything except shuffle_strands, which reports the parallelism
/// actually used (the reference is sequential by definition).
void expect_identical_diag(const DemtDiagnostics& a,
                           const DemtDiagnostics& b) {
  EXPECT_EQ(a.cmax_estimate, b.cmax_estimate);
  EXPECT_EQ(a.cmax_lower_bound, b.cmax_lower_bound);
  EXPECT_EQ(a.grid_k, b.grid_k);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.merged_stacks, b.merged_stacks);
  EXPECT_EQ(a.shuffle_improvements, b.shuffle_improvements);
  EXPECT_EQ(a.dual_tests, b.dual_tests);
}

void expect_identical_dual(const DualTestResult& a, const DualTestResult& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.total_work, b.total_work);
  if (!a.feasible) return;
  ASSERT_EQ(a.assignment.size(), b.assignment.size());
  for (std::size_t i = 0; i < a.assignment.size(); ++i) {
    EXPECT_EQ(a.assignment[i].shelf, b.assignment[i].shelf) << "task " << i;
    EXPECT_EQ(a.assignment[i].allotment, b.assignment[i].allotment)
        << "task " << i;
  }
}

void expect_demt_matches_reference(const Instance& instance,
                                   const DemtOptions& options) {
  const DemtResult vec = demt_schedule(instance, options);
  const DemtResult ref = demt_schedule_reference(instance, options);
  require_valid(vec.schedule, instance);
  expect_identical_schedules(vec.schedule, ref.schedule);
  expect_identical_diag(vec.diag, ref.diag);
}

// ------------------------------------------------------ knapsack kernels

std::vector<KnapsackItem> random_items(Rng& rng, int n, int max_cost,
                                       bool allow_zero_weight = false) {
  std::vector<KnapsackItem> items;
  for (int i = 0; i < n; ++i) {
    const double weight = allow_zero_weight && rng.bernoulli(0.3)
                              ? 0.0
                              : rng.uniform(0.0, 10.0);
    items.push_back(KnapsackItem{
        static_cast<int>(rng.uniform_int(1, max_cost)), weight});
  }
  return items;
}

void expect_knapsack_matches_reference(const std::vector<KnapsackItem>& items,
                                       int capacity) {
  const std::vector<int> vec = max_weight_knapsack(items, capacity);
  const std::vector<int> ref = max_weight_knapsack_reference(items, capacity);
  EXPECT_EQ(vec, ref);
}

TEST(DemtKernel, KnapsackDifferentialFuzz) {
  Rng rng(0xA1);
  for (int trial = 0; trial < 400; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(0, 40));
    const int capacity = static_cast<int>(rng.uniform_int(0, 64));
    const auto items = random_items(rng, n, 12, /*allow_zero_weight=*/true);
    expect_knapsack_matches_reference(items, capacity);
  }
}

TEST(DemtKernel, KnapsackZeroWeightItems) {
  // Zero-work tasks: selecting them never helps, but the tie-break path
  // (cand > dp[j] is false on equality) must match the reference exactly.
  Rng rng(0xA2);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<KnapsackItem> items;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 9));
    for (int i = 0; i < n; ++i) {
      items.push_back(
          KnapsackItem{static_cast<int>(rng.uniform_int(1, 4)), 0.0});
    }
    const int capacity = static_cast<int>(rng.uniform_int(1, 12));
    expect_knapsack_matches_reference(items, capacity);
    EXPECT_TRUE(max_weight_knapsack(items, capacity).empty());
  }
}

TEST(DemtKernel, KnapsackSingleProcessorCapacity) {
  // capacity == 1: only one unit-cost item can win; the sweep's cost >
  // capacity skip path dominates.
  Rng rng(0xA3);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 15));
    const auto items = random_items(rng, n, 5, /*allow_zero_weight=*/true);
    expect_knapsack_matches_reference(items, 1);
    const auto selected = max_weight_knapsack(items, 1);
    EXPECT_LE(selected.size(), 1u);
    if (!selected.empty()) EXPECT_EQ(items[selected[0]].cost, 1);
  }
}

TEST(DemtKernel, KnapsackAllSaturatingRows) {
  // Every item saturates the budget by itself: the DP must pick exactly
  // the heaviest one (first on ties), and the row sweep only ever updates
  // the last cell.
  Rng rng(0xA4);
  for (int trial = 0; trial < 50; ++trial) {
    const int capacity = 1 + static_cast<int>(rng.uniform_int(0, 19));
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 11));
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i) {
      items.push_back(KnapsackItem{capacity, rng.uniform(0.0, 10.0)});
    }
    expect_knapsack_matches_reference(items, capacity);
    const auto selected = max_weight_knapsack(items, capacity);
    ASSERT_EQ(selected.size(), 1u);
    for (const KnapsackItem& item : items) {
      EXPECT_LE(item.weight, items[selected[0]].weight);
    }
  }
}

TEST(DemtKernel, KnapsackIntoMatchesVectorOverloads) {
  Rng rng(0xA5);
  KnapsackWorkspace ws;
  std::vector<int> selected;
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(0, 24));
    const int capacity = static_cast<int>(rng.uniform_int(0, 32));
    const auto items = random_items(rng, n, 8);
    std::vector<int> costs;
    std::vector<double> weights;
    for (const KnapsackItem& item : items) {
      costs.push_back(item.cost);
      weights.push_back(item.weight);
    }
    max_weight_knapsack_into(costs.data(), weights.data(), n, capacity, ws,
                             selected);
    EXPECT_EQ(selected, max_weight_knapsack(items, capacity));
    EXPECT_EQ(selected, max_weight_knapsack_reference(items, capacity));
  }
}

TEST(DemtKernel, KnapsackWorkspaceReuseAcrossShapes) {
  // Alternating problem shapes through one workspace must not leak state:
  // each call's answer equals a fresh-buffer run of the same problem.
  Rng rng(0xA6);
  KnapsackWorkspace ws;
  std::vector<int> selected;
  for (int trial = 0; trial < 40; ++trial) {
    const int n = trial % 2 == 0 ? 30 : 1 + static_cast<int>(
                                            rng.uniform_int(0, 4));
    const int capacity = trial % 3 == 0 ? 257 : 7;
    const auto items = random_items(rng, n, 16);
    std::vector<int> costs;
    std::vector<double> weights;
    for (const KnapsackItem& item : items) {
      costs.push_back(item.cost);
      weights.push_back(item.weight);
    }
    max_weight_knapsack_into(costs.data(), weights.data(), n, capacity, ws,
                             selected);
    EXPECT_EQ(selected, max_weight_knapsack_reference(items, capacity));
  }
}

// ----------------------------------------------------- SoA allotment rows

TEST(DemtKernel, AllotmentViewMatchesScalarTableRows) {
  Rng rng(0xB1);
  for (int m : machine_sizes()) {
    const Instance instance = make_mix_instance(Mix::Moldable, 30, m, rng);
    const InstanceAllotments tables(instance);
    ASSERT_EQ(tables.num_tasks(), instance.num_tasks());
    for (int t = 0; t < instance.num_tasks(); ++t) {
      const AllotmentTable ref(instance.task(t));
      const InstanceAllotments::View view = tables.table(t);
      ASSERT_EQ(view.size(), ref.size()) << "task " << t;
      EXPECT_EQ(view.strictly_monotone(), ref.strictly_monotone());
      for (int i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(view.time_at(i), ref.time_at(i)) << "t=" << t << " i=" << i;
        EXPECT_EQ(view.min_k_at(i), ref.min_k_at(i));
        EXPECT_EQ(view.min_work_k_at(i), ref.min_work_k_at(i));
      }
    }
  }
}

TEST(DemtKernel, AllotmentRowsMonotoneProperties) {
  // Structural invariants of every row: times sorted ascending, the
  // prefix-argmin k never increases (more options can only shrink the
  // smallest feasible k), and the prefix min-work never increases.
  Rng rng(0xB2);
  for (int m : {4, 64, 257}) {
    const Instance instance = make_mix_instance(Mix::Rigid, 30, m, rng);
    const InstanceAllotments tables(instance);
    for (int t = 0; t < instance.num_tasks(); ++t) {
      const MoldableTask& task = instance.task(t);
      const InstanceAllotments::View view = tables.table(t);
      for (int i = 1; i < view.size(); ++i) {
        EXPECT_LE(view.time_at(i - 1), view.time_at(i));
        EXPECT_LE(view.min_k_at(i), view.min_k_at(i - 1));
        EXPECT_LE(task.work(view.min_work_k_at(i)),
                  task.work(view.min_work_k_at(i - 1)));
      }
    }
  }
}

TEST(DemtKernel, AllotmentViewQueriesMatchTaskMethods) {
  // canonical()/min_work() agreement with both the scalar table and the
  // task's own scan at every stored boundary (the exact time, just above,
  // just below) plus out-of-range deadlines.
  Rng rng(0xB3);
  for (int m : machine_sizes()) {
    const Instance instance = make_mix_instance(Mix::Moldable, 20, m, rng);
    const InstanceAllotments tables(instance);
    for (int t = 0; t < instance.num_tasks(); ++t) {
      const MoldableTask& task = instance.task(t);
      const AllotmentTable ref(instance.task(t));
      const InstanceAllotments::View view = tables.table(t);
      std::vector<double> deadlines{-1.0, 0.0, 1e300};
      for (int i = 0; i < view.size(); ++i) {
        const double d = view.time_at(i);
        deadlines.push_back(d);
        deadlines.push_back(d * (1.0 + 1e-12));
        deadlines.push_back(d * (1.0 - 1e-12));
      }
      for (double d : deadlines) {
        EXPECT_EQ(view.canonical(d), ref.canonical(d)) << "deadline " << d;
        EXPECT_EQ(view.canonical(d), task.canonical_allotment(d));
        EXPECT_EQ(view.min_work(d), ref.min_work(d));
        EXPECT_EQ(view.min_work(d), task.min_work_allotment(d));
      }
    }
  }
}

TEST(DemtKernel, AllotmentBuildReuseBitIdentical) {
  // A pooled InstanceAllotments rebuilt across instances of different
  // shapes must equal a fresh build every time (capacity, never state).
  Rng rng(0xB4);
  InstanceAllotments pooled;
  for (int round = 0; round < 12; ++round) {
    const int m = machine_sizes()[round % machine_sizes().size()];
    const int n = 5 + 7 * (round % 4);
    const Instance instance = make_mix_instance(
        static_cast<Mix>(round % 3), n, m, rng);
    pooled.build(instance);
    const InstanceAllotments fresh(instance);
    ASSERT_EQ(pooled.num_tasks(), fresh.num_tasks());
    for (int t = 0; t < fresh.num_tasks(); ++t) {
      const auto a = pooled.table(t);
      const auto b = fresh.table(t);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(a.strictly_monotone(), b.strictly_monotone());
      for (int i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.time_at(i), b.time_at(i));
        EXPECT_EQ(a.min_k_at(i), b.min_k_at(i));
        EXPECT_EQ(a.min_work_k_at(i), b.min_work_k_at(i));
      }
    }
  }
}

// ------------------------------------------------------- dual-test kernel

TEST(DemtKernel, DualTestDifferentialFuzz) {
  // Sweep guesses through the interesting range (reject region, the
  // accept boundary, comfortably feasible) on every mix; the vectorized
  // DP, its _into form, and both reference overloads must agree exactly.
  Rng rng(0xC1);
  DualTestWorkspace ws;
  DualTestResult pooled;
  for (int trial = 0; trial < 60; ++trial) {
    const int m = machine_sizes()[trial % machine_sizes().size()];
    const Instance instance = make_mix_instance(
        static_cast<Mix>(trial % 3), 4 + trial % 18, m, rng);
    const InstanceAllotments tables(instance);
    const CmaxEstimate est = estimate_cmax(instance);
    for (int s = 0; s < 8; ++s) {
      const double lambda =
          est.lower_bound * 0.5 +
          (est.estimate * 2.0 - est.lower_bound * 0.5) * s / 7.0;
      const DualTestResult ref = dual_test_reference(instance, lambda);
      expect_identical_dual(dual_test(instance, lambda), ref);
      expect_identical_dual(dual_test(instance, lambda, tables), ref);
      expect_identical_dual(dual_test_reference(instance, lambda, tables),
                            ref);
      dual_test_into(instance, lambda, tables, ws, pooled);
      expect_identical_dual(pooled, ref);
    }
  }
}

TEST(DemtKernel, DualTestMonotoneFastPathSurvives) {
  // On a strictly monotone instance every task's shelf-1 Pareto set
  // collapses to the single canonical allotment: after a dual_test_into
  // the pooled option arrays hold exactly one entry per task. The rewrite
  // must not have widened the fast path back into a scan.
  Rng rng(0xC2);
  for (int m : {4, 64, 257}) {
    const Instance instance = make_mix_instance(Mix::Divisible, 20, m, rng);
    for (int t = 0; t < instance.num_tasks(); ++t) {
      ASSERT_TRUE(InstanceAllotments(instance).table(t).strictly_monotone());
    }
    const InstanceAllotments tables(instance);
    const CmaxEstimate est = estimate_cmax(instance, 1e-4, tables);
    DualTestWorkspace ws;
    DualTestResult out;
    dual_test_into(instance, est.estimate, tables, ws, out);
    ASSERT_TRUE(out.feasible);
    const auto n = static_cast<std::size_t>(instance.num_tasks());
    ASSERT_EQ(ws.opt_begin.size(), n + 1);
    EXPECT_EQ(ws.opt_procs.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(ws.opt_begin[i + 1] - ws.opt_begin[i], 1) << "task " << i;
    }
  }
}

TEST(DemtKernel, DualTestCallCountRegression) {
  // The search trajectory is part of the contract: the vectorized search
  // must perform exactly as many dual tests as the scalar reference, for
  // every workspace form.
  Rng rng(0xC3);
  for (int trial = 0; trial < 40; ++trial) {
    const int m = machine_sizes()[trial % machine_sizes().size()];
    const Instance instance = make_mix_instance(
        static_cast<Mix>(trial % 3), 4 + trial % 14, m, rng);
    const CmaxEstimate ref = estimate_cmax_reference(instance);
    EXPECT_GT(ref.dual_tests, 0);
    EXPECT_EQ(estimate_cmax(instance).dual_tests, ref.dual_tests);
    const InstanceAllotments tables(instance);
    EXPECT_EQ(estimate_cmax(instance, 1e-4, tables).dual_tests,
              ref.dual_tests);
    DualTestWorkspace ws;
    EXPECT_EQ(estimate_cmax(instance, 1e-4, tables, ws).dual_tests,
              ref.dual_tests);
  }
}

TEST(DemtKernel, EstimateCmaxDifferential) {
  Rng rng(0xC4);
  for (int trial = 0; trial < 40; ++trial) {
    const int m = machine_sizes()[trial % machine_sizes().size()];
    const Instance instance = make_mix_instance(
        static_cast<Mix>(trial % 3), 4 + trial % 16, m, rng);
    const CmaxEstimate ref = estimate_cmax_reference(instance);
    const CmaxEstimate vec = estimate_cmax(instance);
    EXPECT_EQ(vec.estimate, ref.estimate);
    EXPECT_EQ(vec.lower_bound, ref.lower_bound);
    EXPECT_EQ(vec.dual_tests, ref.dual_tests);
    expect_identical_dual(vec.partition, ref.partition);
  }
}

TEST(DemtKernel, EstimateCmaxIntoMatchesWorkspaceForm) {
  Rng rng(0xC5);
  DualTestWorkspace ws;
  InstanceAllotments tables;
  CmaxEstimate pooled;
  for (int trial = 0; trial < 20; ++trial) {
    const int m = machine_sizes()[trial % machine_sizes().size()];
    const Instance instance = make_mix_instance(
        static_cast<Mix>(trial % 3), 4 + trial % 12, m, rng);
    tables.build(instance);
    estimate_cmax_into(instance, 1e-4, tables, ws, pooled);
    const CmaxEstimate ref = estimate_cmax_reference(instance);
    EXPECT_EQ(pooled.estimate, ref.estimate);
    EXPECT_EQ(pooled.lower_bound, ref.lower_bound);
    EXPECT_EQ(pooled.dual_tests, ref.dual_tests);
    expect_identical_dual(pooled.partition, ref.partition);
  }
}

// -------------------------------------------------- end-to-end bit lock

TEST(DemtKernel, DemtDifferentialMoldableMix) {
  Rng rng(0xD1);
  for (int m : machine_sizes()) {
    for (int trial = 0; trial < 10; ++trial) {
      const Instance instance =
          make_mix_instance(Mix::Moldable, 5 + trial * 2, m, rng);
      expect_demt_matches_reference(instance, DemtOptions{});
    }
  }
}

TEST(DemtKernel, DemtDifferentialRigidMix) {
  Rng rng(0xD2);
  for (int m : machine_sizes()) {
    for (int trial = 0; trial < 10; ++trial) {
      const Instance instance =
          make_mix_instance(Mix::Rigid, 5 + trial * 2, m, rng);
      expect_demt_matches_reference(instance, DemtOptions{});
    }
  }
}

TEST(DemtKernel, DemtDifferentialDivisibleMix) {
  Rng rng(0xD3);
  for (int m : machine_sizes()) {
    for (int trial = 0; trial < 10; ++trial) {
      const Instance instance =
          make_mix_instance(Mix::Divisible, 5 + trial * 2, m, rng);
      expect_demt_matches_reference(instance, DemtOptions{});
    }
  }
}

TEST(DemtKernel, DemtDifferentialGeneratorFamilies) {
  Rng rng(0xD4);
  for (WorkloadFamily family : all_families()) {
    for (int m : machine_sizes()) {
      for (int trial = 0; trial < 3; ++trial) {
        const Instance instance =
            generate_instance(family, 8 + trial * 6, m, rng);
        expect_demt_matches_reference(instance, DemtOptions{});
      }
    }
  }
}

TEST(DemtKernel, DemtOptionVariantsDifferential) {
  // Every schedule-affecting option, each against the reference: the
  // scalar and SoA pipelines must stay locked on all ablation branches,
  // not just the defaults.
  Rng rng(0xD5);
  std::vector<DemtOptions> variants;
  {
    DemtOptions o;
    o.compaction = DemtOptions::Compaction::None;
    variants.push_back(o);
    o.compaction = DemtOptions::Compaction::PullForward;
    variants.push_back(o);
  }
  {
    DemtOptions o;
    o.local_order = DemtOptions::LocalOrder::AsSelected;
    variants.push_back(o);
    o.local_order = DemtOptions::LocalOrder::LongestFirst;
    variants.push_back(o);
  }
  {
    DemtOptions o;
    o.shuffles = 0;
    variants.push_back(o);
    o.shuffles = 5;
    o.shuffle_batch_order = true;
    variants.push_back(o);
  }
  {
    DemtOptions o;
    o.merge_small_tasks = false;
    variants.push_back(o);
    o.merge_small_tasks = true;
    o.smith_order_stacks = false;
    variants.push_back(o);
  }
  for (const DemtOptions& options : variants) {
    for (int trial = 0; trial < 5; ++trial) {
      const int m = machine_sizes()[trial % machine_sizes().size()];
      const Instance instance = make_mix_instance(
          static_cast<Mix>(trial % 3), 6 + trial * 3, m, rng);
      expect_demt_matches_reference(instance, options);
    }
  }
}

TEST(DemtKernel, DemtIntoMatchesWrapperOnWarmWorkspace) {
  // The serving entry point, called repeatedly through one warm
  // workspace and one pooled FlatPlacements, must keep producing the
  // wrapper's (and thus the reference's) schedule bit for bit.
  Rng rng(0xD6);
  DemtWorkspace ws;
  FlatPlacements out;
  DemtDiagnostics diag;
  for (int trial = 0; trial < 16; ++trial) {
    const int m = machine_sizes()[trial % machine_sizes().size()];
    const Instance instance = make_mix_instance(
        static_cast<Mix>(trial % 3), 5 + trial, m, rng);
    demt_schedule_into(instance, DemtOptions{}, ws, out, diag);
    const DemtResult ref = demt_schedule_reference(instance);
    expect_identical_schedules(out.to_schedule(m), ref.schedule);
    expect_identical_diag(diag, ref.diag);
    const FlatMetrics metrics = out.metrics(instance);
    EXPECT_EQ(metrics.cmax, ref.schedule.cmax());
    EXPECT_EQ(metrics.weighted_completion_sum,
              ref.schedule.weighted_completion_sum(instance));
  }
}

// ------------------------------------------------------- flatlist policy

TEST(DemtKernel, FlatListPolicyDeterministicAndValid) {
  // The second serving policy over the same fuzz axes: a warm workspace
  // must reproduce a cold run exactly, and the flat output must convert
  // to a valid schedule whose metrics match the fused scan.
  Rng rng(0xE1);
  ListPassWorkspace warm;
  FlatPlacements warm_out;
  for (int trial = 0; trial < 30; ++trial) {
    const int m = machine_sizes()[trial % machine_sizes().size()];
    const Instance instance = make_mix_instance(
        static_cast<Mix>(trial % 3), 4 + trial % 20, m, rng);
    flat_list_schedule(instance, warm, warm_out);
    ListPassWorkspace cold;
    FlatPlacements cold_out;
    flat_list_schedule(instance, cold, cold_out);
    ASSERT_EQ(warm_out.size(), cold_out.size());
    EXPECT_EQ(warm_out.start, cold_out.start);
    EXPECT_EQ(warm_out.duration, cold_out.duration);
    const Schedule schedule = warm_out.to_schedule(m);
    require_valid(schedule, instance);
    const FlatMetrics metrics = warm_out.metrics(instance);
    EXPECT_EQ(metrics.cmax, schedule.cmax());
    EXPECT_EQ(metrics.weighted_completion_sum,
              schedule.weighted_completion_sum(instance));
  }
}

TEST(DemtKernel, FusedMetricsBitIdenticalToSplitScans) {
  // The fused min/argmin scan against the two split scans it replaced, on
  // real schedules from both policies.
  Rng rng(0xE2);
  ListPassWorkspace list;
  FlatPlacements flat;
  for (int trial = 0; trial < 30; ++trial) {
    const int m = machine_sizes()[trial % machine_sizes().size()];
    const Instance instance = make_mix_instance(
        static_cast<Mix>(trial % 3), 4 + trial % 16, m, rng);
    if (trial % 2 == 0) {
      flat_list_schedule(instance, list, flat);
    } else {
      flat.assign_from(demt_schedule(instance).schedule);
    }
    const FlatMetrics fused = flat.metrics(instance);
    EXPECT_EQ(fused.cmax, flat.cmax());
    EXPECT_EQ(fused.weighted_completion_sum,
              flat.weighted_completion_sum(instance));
  }
}

}  // namespace
}  // namespace moldsched
