#include "core/knapsack.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace moldsched {
namespace {

double total_weight(const std::vector<KnapsackItem>& items,
                    const std::vector<int>& selected) {
  double sum = 0.0;
  for (int i : selected) sum += items[static_cast<std::size_t>(i)].weight;
  return sum;
}

int total_cost(const std::vector<KnapsackItem>& items,
               const std::vector<int>& selected) {
  int sum = 0;
  for (int i : selected) sum += items[static_cast<std::size_t>(i)].cost;
  return sum;
}

TEST(Knapsack, EmptyItems) {
  EXPECT_TRUE(max_weight_knapsack({}, 10).empty());
}

TEST(Knapsack, TakesEverythingWhenItFits) {
  const std::vector<KnapsackItem> items{{2, 1.0}, {3, 2.0}, {4, 3.0}};
  const auto selected = max_weight_knapsack(items, 9);
  EXPECT_EQ(selected.size(), 3u);
}

TEST(Knapsack, ClassicInstance) {
  // Capacity 10; best is items 1+2 (costs 4+6, weights 40+55 = 95) over
  // greedy-by-density choices.
  const std::vector<KnapsackItem> items{{5, 50.0}, {4, 40.0}, {6, 55.0}, {3, 10.0}};
  const auto selected = max_weight_knapsack(items, 10);
  EXPECT_NEAR(total_weight(items, selected), 95.0, 1e-12);
  EXPECT_LE(total_cost(items, selected), 10);
}

TEST(Knapsack, ZeroCapacity) {
  const std::vector<KnapsackItem> items{{1, 5.0}};
  EXPECT_TRUE(max_weight_knapsack(items, 0).empty());
}

TEST(Knapsack, OversizedItemIgnored) {
  const std::vector<KnapsackItem> items{{100, 99.0}, {2, 1.0}};
  const auto selected = max_weight_knapsack(items, 10);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], 1);
}

TEST(Knapsack, Validation) {
  EXPECT_THROW(max_weight_knapsack({{0, 1.0}}, 5), std::invalid_argument);
  EXPECT_THROW(max_weight_knapsack({{-1, 1.0}}, 5), std::invalid_argument);
  EXPECT_THROW(max_weight_knapsack({{1, -1.0}}, 5), std::invalid_argument);
  EXPECT_THROW(max_weight_knapsack({{1, 1.0}}, -1), std::invalid_argument);
}

TEST(Knapsack, MatchesBruteForceOnRandomInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 11));
    const int capacity = static_cast<int>(rng.uniform_int(1, 20));
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i) {
      items.push_back(KnapsackItem{static_cast<int>(rng.uniform_int(1, 8)),
                                   rng.uniform(0.0, 10.0)});
    }
    const auto selected = max_weight_knapsack(items, capacity);
    EXPECT_LE(total_cost(items, selected), capacity);

    // Brute force over all subsets.
    double best = 0.0;
    for (int mask = 0; mask < (1 << n); ++mask) {
      int cost = 0;
      double weight = 0.0;
      for (int i = 0; i < n; ++i) {
        if (mask & (1 << i)) {
          cost += items[static_cast<std::size_t>(i)].cost;
          weight += items[static_cast<std::size_t>(i)].weight;
        }
      }
      if (cost <= capacity) best = std::max(best, weight);
    }
    EXPECT_NEAR(total_weight(items, selected), best, 1e-9)
        << "trial " << trial;
  }
}

TEST(Knapsack, SelectionIndicesAreSortedAndUnique) {
  Rng rng(78);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 30; ++i) {
    items.push_back(KnapsackItem{static_cast<int>(rng.uniform_int(1, 5)),
                                 rng.uniform(0.1, 5.0)});
  }
  const auto selected = max_weight_knapsack(items, 25);
  for (std::size_t i = 1; i < selected.size(); ++i) {
    EXPECT_LT(selected[i - 1], selected[i]);
  }
}

}  // namespace
}  // namespace moldsched
